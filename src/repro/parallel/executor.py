"""Chunk fan-out: stacked batches dispatched across a worker pool.

This is the ``engine="parallel"`` backend behind the compiled-plan API.
The unit of parallelism is the **footprint-bounded stacked chunk** the
chunked serial path already produces (:func:`stacked_chunk_sizes` made the
units independent — a chunk never reads another chunk's meshes), so the
schedule is identical to the serial compiled engine: same chunk sizes,
same dispatch accounting, bit-identical per-mesh results. Only *where*
the tape replays changes: each chunk becomes one task on a persistent
:class:`~repro.parallel.pool.WorkerPool`.

Transport is backend-dependent. Process workers (the default for chunks
past :data:`PROCESS_BACKEND_MIN_BYTES`) receive inputs — and return
produced fields — through a :class:`~repro.parallel.shm.SharedStack`
segment, so arrays cross the boundary zero-copy; only the small lowered
plan pickles. Thread workers share the address space and take the field
environments directly. Either way the worker binds buffers at most once
per plan token (:mod:`repro.parallel.worker`) and replays the warm tape.

Execution is **resilient** (:mod:`repro.resilience`): every chunk is
collected under a :class:`~repro.resilience.RetryPolicy` — a failed,
crashed, hung or corrupt chunk is retried with deterministic backoff on
its backend, then degraded down the process → thread → serial ladder;
the terminal serial rung replays the chunk in-process on the same
lowered plan, so recovered results are bit-identical to the serial
engine no matter which backends broke. A
:class:`~repro.resilience.FaultPlan` (``REPRO_FAULT_PLAN`` or the
``fault_plan=`` argument) arms deterministic faults into worker tasks so
each recovery path is testable. Recovery emits ``resilience.retries``,
``resilience.degraded``, ``resilience.timeouts`` and
``exec.fault_injected`` through :mod:`repro.observability`.

:func:`submit_stacked` returns a :class:`PendingBatch` rather than
results, so a caller with several independent batches (a workload mix's
job groups) can submit them all and let *every* chunk of *every* group
share the pool concurrently; :func:`run_program_parallel` is the
submit-and-wait convenience with the same signature as
:func:`~repro.stencil.compiled.run_program_stacked`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field as dc_field
from typing import Mapping, Sequence

import numpy as np

from repro import observability as obs
from repro.mesh.mesh import Field
from repro.parallel.pool import WorkerPool, default_workers, shared_pool
from repro.parallel.shm import SharedStack
from repro.parallel.worker import run_chunk_fields, run_chunk_shm
from repro.resilience import (
    DEFAULT_POLICY,
    CancelToken,
    CorruptResultError,
    ExecutionCancelled,
    FaultPlan,
    RetryPolicy,
    checksum_arrays,
    classify_failure,
)
from repro.stencil.compiled import (
    STACKED_BYTES_LIMIT,
    CompiledPlanCache,
    DEFAULT_CACHE,
    check_stacked_batch,
    record_dispatch_stats,
    run_program_stacked,
    stacked_chunk_sizes,
)
from repro.stencil.plan import ProgramPlan, program_token, required_inputs
from repro.stencil.program import StencilProgram
from repro.util.errors import ReproError, ValidationError

#: chunks whose stacked working set is at least this big default to the
#: process backend; smaller chunks stay on threads, where the dispatch is
#: a function call instead of a task message + shared-memory segment (the
#: crossover sits well below a millisecond of tape time, so this only
#: needs to be the right order of magnitude)
PROCESS_BACKEND_MIN_BYTES = 1 << 18


class ParallelExecutionError(ReproError):
    """A chunk failed beyond recovery under the parallel engine.

    Raised only once the dispatch's :class:`RetryPolicy` is exhausted —
    every rung of the degradation ladder tried its attempts. Carries the
    failing dispatch's context as attributes so callers can act on it
    without parsing the message: ``backend`` (the backend the batch was
    dispatched on, if known), ``elapsed`` (seconds between the chunk's
    last submit and the failure surfacing, if known), ``attempts`` (total
    tries across every rung) and ``final_backend`` (the ladder rung the
    chunk died on).
    """

    def __init__(
        self,
        message: str,
        backend: str | None = None,
        elapsed: float | None = None,
        attempts: int | None = None,
        final_backend: str | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.elapsed = elapsed
        self.attempts = attempts
        self.final_backend = final_backend


#: interned plan tokens: structural binding key -> short stable string.
#: Bounded — an evicted key re-seen later gets a *new* token, which only
#: costs a worker-side rebind, never a wrong cache hit (distinct keys can
#: never share a token: the counter only moves forward).
_TOKENS: OrderedDict[tuple, str] = OrderedDict()
_TOKENS_LOCK = threading.Lock()
_MAX_TOKENS = 256
_TOKEN_IDS = itertools.count()


def plan_token_for(
    program: StencilProgram,
    fields: Mapping[str, Field],
    coefficients: Mapping[str, float] | None = None,
) -> str:
    """A stable identity for ``(program structure, specs, coefficients)``.

    The parent stamps every chunk task with this token; workers key their
    local instance caches by it, so two chunks of the same binding share
    one bound plan per worker without the worker re-deriving the identity.
    Equal bindings (by the same structural key the plan cache uses) always
    yield the same token within a parent process.
    """
    specs = tuple(
        (name, fields[name].spec) for name in required_inputs(program)
    )
    coeffs = tuple(sorted(
        (name, float(value)) for name, value in (coefficients or {}).items()
    ))
    key = (program_token(program), specs, coeffs)
    with _TOKENS_LOCK:
        token = _TOKENS.get(key)
        if token is None:
            token = f"plan-{next(_TOKEN_IDS)}"
            _TOKENS[key] = token
            while len(_TOKENS) > _MAX_TOKENS:
                _TOKENS.popitem(last=False)
        else:
            _TOKENS.move_to_end(key)
    return token


@dataclass
class _DispatchContext:
    """Everything a chunk needs to be (re-)dispatched after submit time."""

    pool: WorkerPool | None
    workers: int
    policy: RetryPolicy
    faults: FaultPlan | None
    trace: object = None

    @property
    def checksum(self) -> bool:
        return self.policy.verify_checksums

    def pool_for(self, backend: str) -> WorkerPool:
        """The explicit pool if it matches, else the shared one."""
        if self.pool is not None and self.pool.backend == backend:
            return self.pool
        return shared_pool(backend, self.workers)


@dataclass
class _PendingChunk:
    """One chunk of the batch: its slice, transport and attempt state."""

    index: int
    start: int
    size: int
    #: the chunk's own field environments, retained for re-dispatch
    members: Sequence[Mapping[str, Field]]
    future: object = None
    #: shared-memory segment of the current attempt (process backend only)
    stack: SharedStack | None = None
    #: ladder rung of the current attempt ("process"/"thread"/"serial")
    backend: str = ""
    #: perf_counter timestamp of the current submit (deadline anchor)
    submitted_at: float = 0.0
    #: total dispatches of this chunk, across every rung
    attempts: int = 0
    #: recoveries, i.e. ``attempts - 1`` once the chunk lands
    retries: int = 0
    #: True once the chunk was cancelled before its task ever started
    cancelled: bool = False


@dataclass
class PendingBatch:
    """A stacked batch in flight; :meth:`result` assembles it in order.

    Results are reassembled by chunk *index*, so per-mesh order matches the
    submitted batch no matter in which order workers finish. Chunk-size
    accounting (``stats=``) is fixed at submit time — the schedule is
    deterministic; only completion order (and recovery) is not.
    """

    batch_fields: Sequence[Mapping[str, Field]]
    plan: ProgramPlan | None
    niter: int
    token: str = ""
    pending: list[_PendingChunk] = dc_field(default_factory=list)
    #: pre-computed results for degenerate batches that never hit the pool
    ready: list[dict[str, Field]] | None = None
    #: worker backend the chunks were dispatched on ("process"/"thread")
    backend: str = ""
    #: workers bind NativeProgram instances (generated steady loops)
    native: bool = False
    #: the caller's ``stats=`` dict, so collection can append the
    #: worker-measured ``chunk_seconds`` once results land
    stats: dict | None = None
    #: retry/fault machinery shared by every chunk of this batch
    ctx: _DispatchContext | None = None
    #: cooperative cancellation flag; :meth:`cancel` sets it, the collect
    #: loop polls it at every chunk boundary (and in 50 ms wait slices)
    cancel_token: CancelToken = dc_field(default_factory=CancelToken)
    _results: list[dict[str, Field]] | None = None
    #: serializes shared-memory release between cancel() and result()
    _release_lock: threading.Lock = dc_field(default_factory=threading.Lock)

    def cancel(self, reason: str | None = None) -> None:
        """Cooperatively cancel the batch; safe from any thread.

        Not-yet-started chunk tasks are cancelled on the pool **and their
        shared-memory slots released right here** — nobody will ever run
        them, so waiting for a collect that may never come would strand
        the segments (exactly what used to happen until the next pool
        reset). In-flight chunks are left to finish their current tape
        replay: a concurrent :meth:`result` observes the token at its next
        safe point, reclaims their transport and raises
        :class:`~repro.resilience.ExecutionCancelled`; a batch nobody
        collects reclaims them in :meth:`close`. Idempotent; a no-op once
        results have landed.
        """
        if self._results is not None or self.ready is not None:
            return
        self.cancel_token.set(reason)
        dropped = 0
        for chunk in self.pending:
            fut = chunk.future
            if fut is not None and fut.cancel():
                chunk.cancelled = True
                self._release(chunk)
                dropped += 1
        obs.inc("exec.batches_cancelled")
        obs.emit(
            "exec.batch_cancelled",
            plan=self.token,
            chunks_dropped=dropped,
            chunks_total=len(self.pending),
            reason=reason,
        )

    def result(self) -> list[dict[str, Field]]:
        """Block until every chunk finished; per-mesh results in order.

        Each chunk is collected under the batch's :class:`RetryPolicy`:
        a failure or deadline miss retries the chunk on its rung (with
        deterministic backoff), then degrades it down the ladder. Only a
        chunk that exhausts every rung raises
        :class:`ParallelExecutionError` naming the chunk and its mesh
        range (callers scheduling several batches add their own context,
        e.g. the originating workload spec); remaining chunks are then
        abandoned and their segments reclaimed.
        """
        if self._results is not None:
            return self._results
        if self.ready is not None:
            self._results = self.ready
            return self._results
        failure: tuple[_PendingChunk, BaseException] | None = None
        cancelled: ExecutionCancelled | None = None
        results: list[dict[str, Field] | None] = [None] * len(self.batch_fields)
        chunk_seconds: list[float] = [0.0] * len(self.pending)
        retries = 0
        for chunk in self.pending:
            if failure is not None or cancelled is not None:
                self._abandon(chunk)
                continue
            if self.cancel_token.is_set():
                # observed between chunks: abandon this one and the rest
                cancelled = self._cancelled_error()
                self._abandon(chunk)
                continue
            try:
                out = self._collect_chunk(chunk)
            except ExecutionCancelled as exc:
                cancelled = exc
                self._release(chunk)
                continue
            except BaseException as exc:  # noqa: BLE001 - rewrapped below
                failure = (chunk, exc)
                self._release(chunk)
                continue
            retries += chunk.retries
            seconds = float(out.get("seconds", 0.0))
            chunk_seconds[chunk.index] = seconds
            obs.observe(
                "exec.chunk_seconds", seconds,
                backend=chunk.backend or self.backend or "parallel",
            )
            obs.adopt_spans(out.get("spans"))
            self._assemble(chunk, out, results)
            self._release(chunk)
        self._cleanup()
        if failure is not None:
            chunk, exc = failure
            elapsed = (
                time.perf_counter() - chunk.submitted_at
                if chunk.submitted_at else None
            )
            backend = self.backend or None
            obs.inc("parallel.worker_failures", backend=backend or "unknown")
            obs.emit(
                "parallel.worker_failure",
                chunk=chunk.index,
                meshes=[chunk.start, chunk.start + chunk.size - 1],
                plan=self.token,
                backend=backend,
                elapsed=elapsed,
                attempts=chunk.attempts,
                final_backend=chunk.backend or None,
                error=repr(exc),
            )
            context = f", backend {backend}" if backend else ""
            if chunk.attempts > 1:
                context += f", {chunk.attempts} attempts ending on {chunk.backend}"
            if elapsed is not None:
                context += f", {elapsed:.3f}s after submit"
            raise ParallelExecutionError(
                f"parallel chunk {chunk.index + 1}/{len(self.pending)} "
                f"(meshes {chunk.start}..{chunk.start + chunk.size - 1}, "
                f"plan {self.token[:12]}{context}) failed: {exc!r}",
                backend=backend,
                elapsed=elapsed,
                attempts=chunk.attempts,
                final_backend=chunk.backend or None,
            ) from exc
        if cancelled is not None:
            raise cancelled
        if self.stats is not None:
            self.stats["chunk_seconds"] = chunk_seconds
            if retries:
                self.stats["retries"] = retries
        self._results = results  # type: ignore[assignment]
        return self._results

    def _cancelled_error(self) -> ExecutionCancelled:
        reason = self.cancel_token.reason
        suffix = f": {reason}" if reason else ""
        return ExecutionCancelled(
            f"parallel batch (plan {self.token[:12]}) cancelled{suffix}"
        )

    # -- per-chunk collection with retry and degradation -----------------------
    def _collect_chunk(self, chunk: _PendingChunk) -> dict:
        """One chunk's result, retried and degraded per the policy."""
        ctx = self.ctx
        policy = ctx.policy if ctx is not None else DEFAULT_POLICY
        rungs = list(policy.rungs_from(self.backend or chunk.backend))
        if not rungs:
            rungs = [chunk.backend or self.backend]
        rung_i = rungs.index(chunk.backend) if chunk.backend in rungs else 0
        attempt_on_rung = 1  # the submit-time dispatch is attempt one
        while True:
            self.cancel_token.raise_if_set(
                f"parallel chunk {chunk.index} (plan {self.token[:12]})"
            )
            rung = rungs[rung_i]
            try:
                if rung == "serial":
                    out = self._run_serial(chunk)
                else:
                    out = self._await(chunk, policy)
                self._verify(chunk, out)
                return out
            except (KeyboardInterrupt, SystemExit):
                self._release(chunk)
                raise
            except ExecutionCancelled:
                # cancellation is a caller decision, never a chunk failure:
                # it must not be retried or degraded
                self._release(chunk)
                raise
            except BaseException as exc:  # noqa: BLE001 - classified below
                if self.cancel_token.is_set():
                    # a cancel() racing this attempt cancelled the future
                    # out from under us; surface the cancellation, not the
                    # secondary error it provoked
                    self._release(chunk)
                    raise self._cancelled_error() from exc
                kind = classify_failure(exc)
                if kind == "timeout":
                    self._kill_hung(chunk, rung)
                self._release(chunk)
                if attempt_on_rung >= policy.max_attempts:
                    if rung_i + 1 >= len(rungs):
                        raise
                    rung_i += 1
                    attempt_on_rung = 0
                    obs.inc(
                        "resilience.degraded",
                        from_backend=rung, to_backend=rungs[rung_i], kind=kind,
                    )
                    obs.emit(
                        "resilience.degraded",
                        chunk=chunk.index, plan=self.token,
                        from_backend=rung, to_backend=rungs[rung_i],
                        failure=kind, error=repr(exc),
                    )
                attempt_on_rung += 1
                chunk.retries += 1
                rung = rungs[rung_i]
                obs.inc("resilience.retries", backend=rung, kind=kind)
                obs.emit(
                    "resilience.retry",
                    chunk=chunk.index, plan=self.token, backend=rung,
                    attempt=chunk.attempts + 1, failure=kind, error=repr(exc),
                )
                delay = policy.backoff_delay(
                    chunk.retries, self.token, chunk.index
                )
                if delay:
                    time.sleep(delay)
                if rung != "serial":
                    _dispatch(self, chunk, rung)

    #: wait-slice width while blocking on a worker future: the collect
    #: thread re-checks the cancel token this often, so an in-flight batch
    #: with no chunk deadline still observes cancellation promptly
    _WAIT_SLICE = 0.05

    def _await(self, chunk: _PendingChunk, policy: RetryPolicy) -> dict:
        """The current attempt's worker result, bounded by the deadline.

        The wait is sliced so cooperative cancellation cannot be starved
        by a deadline-less policy: each slice that expires without a
        result re-checks the batch's cancel token; the policy's own
        deadline semantics are unchanged (a miss still raises the
        ``FuturesTimeout`` the retry ladder classifies as ``timeout``).
        """
        while True:
            remaining = policy.deadline_remaining(
                chunk.submitted_at, time.perf_counter()
            )
            wait = (
                self._WAIT_SLICE
                if remaining is None
                else min(remaining, self._WAIT_SLICE)
            )
            try:
                return chunk.future.result(timeout=wait)
            except FuturesTimeout:
                if remaining is not None and remaining <= self._WAIT_SLICE:
                    raise  # the policy deadline itself expired
                self.cancel_token.raise_if_set(
                    f"parallel chunk {chunk.index} (plan {self.token[:12]})"
                )

    def _run_serial(self, chunk: _PendingChunk) -> dict:
        """The terminal rung: replay the chunk in-process, fault-free.

        Runs the very same lowered plan through the same worker entry
        point the thread backend uses, so a chunk rescued here is
        bit-identical to one that never failed.
        """
        chunk.backend = "serial"
        chunk.attempts += 1
        chunk.submitted_at = time.perf_counter()
        return run_chunk_fields(
            self.token, self.plan, chunk.size, self.niter, chunk.members,
            trace=self.ctx.trace if self.ctx is not None else None,
            native=self.native,
        )

    def _verify(self, chunk: _PendingChunk, out: dict) -> None:
        """Re-check the worker's per-field CRCs on the received data."""
        shipped = out.get("checksums")
        if shipped is None:
            return
        if chunk.stack is not None:
            actual = checksum_arrays(
                {f: chunk.stack.array(f"o:{f}") for f in shipped}
            )
        else:
            actual = checksum_arrays(out["fields"])
        if actual != shipped:
            bad = sorted(n for n in shipped if actual.get(n) != shipped[n])
            raise CorruptResultError(
                f"chunk {chunk.index} returned corrupt data for fields "
                f"{bad} (plan {self.token[:12]})"
            )

    def _kill_hung(self, chunk: _PendingChunk, rung: str) -> None:
        """Deadline miss: count it, abandon the future, kill a stuck pool."""
        obs.inc("resilience.timeouts", backend=rung)
        obs.emit(
            "resilience.timeout",
            chunk=chunk.index, plan=self.token, backend=rung,
            attempt=chunk.attempts,
        )
        if chunk.future is not None:
            chunk.future.cancel()
        if self.ctx is not None and rung == "process":
            # a hung process worker never frees its lane on its own
            self.ctx.pool_for(rung).reset(kill=True)

    # -- assembly and cleanup --------------------------------------------------
    def _assemble(self, chunk, out, results) -> None:
        produced = self.plan.final_env(self.niter)
        fields = out.get("fields")
        for b in range(chunk.size):
            env = dict(self.batch_fields[chunk.start + b])
            for fname in produced:
                spec = self.plan.produced_specs[fname]
                if chunk.stack is not None:
                    # copy out of shared memory before the segment is
                    # unlinked; thread workers already returned copies
                    data = np.array(chunk.stack.array(f"o:{fname}")[b])
                else:
                    data = fields[fname][b]
                env[fname] = Field(fname, spec, data)
            results[chunk.start + b] = env

    def _release(self, chunk: _PendingChunk) -> None:
        """Reclaim the current attempt's transport (segment + future).

        Serialized against a concurrent :meth:`cancel`: the stack handoff
        happens under the batch lock so exactly one thread unlinks it.
        """
        with self._release_lock:
            stack, chunk.stack = chunk.stack, None
            chunk.future = None
        if stack is not None:
            stack.unlink()

    def _abandon(self, chunk: _PendingChunk) -> None:
        """Discard an in-flight chunk: cancel, wait it out, reclaim."""
        if chunk.future is not None:
            chunk.future.cancel()
            try:
                timeout = (
                    self.ctx.policy.chunk_timeout
                    if self.ctx is not None else None
                )
                chunk.future.result(timeout=timeout)
            except BaseException:  # noqa: BLE001 - abandoning anyway
                pass
        self._release(chunk)

    def _cleanup(self) -> None:
        for chunk in self.pending:
            if chunk.stack is not None:
                chunk.stack.unlink()
                chunk.stack = None

    def close(self) -> None:
        """Abandon the batch: wait out in-flight chunks, free segments.

        Used when a sibling batch failed and the caller unwinds — results
        are discarded, shared memory is reclaimed, errors are swallowed.
        """
        if self._results is not None or self.ready is not None:
            return
        for chunk in self.pending:
            self._abandon(chunk)
        self._cleanup()
        self._results = []


def _dispatch(batch: PendingBatch, chunk: _PendingChunk, backend: str) -> None:
    """Submit (or resubmit) one chunk on ``backend``, arming any due fault."""
    ctx = batch.ctx
    chunk.backend = backend
    chunk.attempts += 1
    pool = ctx.pool_for(backend)
    if backend == "process":
        plan = batch.plan
        dtype = plan.mesh.dtype
        produced = tuple(plan.final_env(batch.niter))
        layout: dict[str, tuple[tuple[int, ...], np.dtype]] = {}
        for name in plan.inputs:
            layout[f"i:{name}"] = (
                (chunk.size,) + plan.buffers[f"in:{name}"], dtype
            )
        for fname in produced:
            shape = plan.produced_specs[fname].storage_shape
            layout[f"o:{fname}"] = ((chunk.size,) + shape, dtype)
        stack = SharedStack.allocate(layout)
        chunk.stack = stack
        for name in plan.inputs:
            arr = stack.array(f"i:{name}")
            for b, env in enumerate(chunk.members):
                np.copyto(arr[b], env[name].data)
        fault = _draw_fault(batch, chunk, backend)
        chunk.submitted_at = time.perf_counter()
        chunk.future = pool.submit(
            run_chunk_shm, batch.token, plan, chunk.size, batch.niter,
            stack.handle, ctx.trace, fault, ctx.checksum, batch.native,
        )
    else:
        fault = _draw_fault(batch, chunk, backend)
        chunk.submitted_at = time.perf_counter()
        chunk.future = pool.submit(
            run_chunk_fields, batch.token, batch.plan, chunk.size,
            batch.niter, chunk.members, ctx.trace, fault, ctx.checksum,
            batch.native,
        )


def _draw_fault(batch: PendingBatch, chunk: _PendingChunk, backend: str):
    """The armed fault for this submit, if the plan has one due."""
    ctx = batch.ctx
    if ctx is None or ctx.faults is None:
        return None
    fault = ctx.faults.draw(chunk.index, batch.token)
    if fault is not None:
        obs.inc("exec.fault_injected", kind=fault.kind, backend=backend)
        obs.emit(
            "exec.fault_injected",
            fault=fault.kind, chunk=chunk.index, plan=batch.token,
            backend=backend,
        )
    return fault


def submit_stacked(
    program: StencilProgram,
    batch_fields: Sequence[Mapping[str, Field]],
    niter: int,
    coefficients: Mapping[str, float] | None = None,
    cache: CompiledPlanCache | None = None,
    max_stack_bytes: float | None = None,
    stats: dict | None = None,
    max_workers: int | None = None,
    backend: str | None = None,
    pool: WorkerPool | None = None,
    policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    cancel: CancelToken | None = None,
    native: bool | None = None,
) -> PendingBatch:
    """Fan a stacked batch's chunks out over a worker pool; non-blocking.

    ``native=True`` makes every worker bind a
    :class:`~repro.stencil.native.NativeProgram` for its chunks — the
    generated steady-loop replay composes with the fan-out, and the
    content-addressed on-disk artifact cache means the pool pays one cc
    build total, not one per worker. Defaults to the
    ``REPRO_PARALLEL_NATIVE=1`` environment toggle, so existing
    ``engine="parallel"`` callers can opt whole deployments in without a
    signature change.

    Mirrors :func:`~repro.stencil.compiled.run_program_stacked` — same
    validation, same chunk schedule, same ``stats`` accounting — but
    returns immediately with a :class:`PendingBatch`. Degenerate batches
    take the serial path inline and come back pre-resolved: ``niter == 0``
    (nothing to run), mixed-dtype bindings (golden interpreter per mesh,
    exactly as the serial engine falls back), and single-worker hosts
    (``max_workers``/CPU count <= 1 and no explicit ``pool``), where
    fan-out could only add dispatch overhead.

    ``backend`` forces ``"process"`` or ``"thread"`` workers; the default
    picks processes for chunks of at least
    :data:`PROCESS_BACKEND_MIN_BYTES` and threads below (small meshes are
    exactly where process transport costs more than the tape). If the
    host cannot allocate shared memory at all, the dispatch degrades to
    the thread backend rather than failing.

    ``policy`` governs recovery at collect time (default
    :data:`~repro.resilience.DEFAULT_POLICY`: two attempts per rung, the
    full degradation ladder; :meth:`RetryPolicy.disabled` restores
    fail-fast). ``fault_plan`` arms deterministic faults into this
    dispatch's worker tasks; when omitted, a plan named by
    ``REPRO_FAULT_PLAN`` applies process-wide. ``cancel`` shares a
    :class:`~repro.resilience.CancelToken` with the returned batch
    (:meth:`PendingBatch.cancel` sets the batch's own token either way):
    once set, collection abandons remaining chunks at the next safe point,
    reclaims every shared-memory segment and raises
    :class:`~repro.resilience.ExecutionCancelled`.
    """
    required, first = check_stacked_batch(program, batch_fields)
    if niter < 0:
        raise ValidationError(f"niter must be non-negative, got {niter}")
    if cancel is not None:
        cancel.raise_if_set("parallel submit")
    if native is None:
        native = os.environ.get("REPRO_PARALLEL_NATIVE") == "1"

    workers = max_workers if max_workers else default_workers()

    def _account(chunks: list[int], backend_used: str) -> None:
        record_dispatch_stats(
            stats, chunks,
            backend=backend_used,
            workers=1 if backend_used == "serial" else workers,
        )

    if niter == 0:
        _account([], "serial")
        if stats is not None:
            stats["chunk_seconds"] = []
        return PendingBatch(
            batch_fields, None, niter, ready=[dict(env) for env in batch_fields]
        )
    dtypes = {first[name].spec.dtype for name in required}
    if len(dtypes) > 1:
        from repro.stencil.numpy_eval import run_program

        chunk_seconds: list[float] = []
        ready = []
        for env in batch_fields:
            t0 = time.perf_counter()
            ready.append(
                run_program(program, env, niter, coefficients, engine="interpreter")
            )
            chunk_seconds.append(time.perf_counter() - t0)
        _account([1] * len(batch_fields), "serial")
        if stats is not None:
            stats["chunk_seconds"] = chunk_seconds
        return PendingBatch(batch_fields, None, niter, ready=ready)
    cache = cache if cache is not None else DEFAULT_CACHE
    limit = max_stack_bytes if max_stack_bytes is not None else STACKED_BYTES_LIMIT
    plan = cache.plan_for(program, first, coefficients)
    chunks = stacked_chunk_sizes(len(batch_fields), plan.nbytes, limit)
    if pool is None and workers <= 1:
        # a one-lane pool cannot overlap anything; run the identical
        # serial chunked schedule in-process (accounting included)
        results = run_program_stacked(
            program, batch_fields, niter, coefficients,
            cache=cache, max_stack_bytes=limit, stats=stats, cancel=cancel,
            engine="native" if native else "compiled",
        )
        _account(chunks, "serial")
        return PendingBatch(batch_fields, plan, niter, ready=results)
    if backend is None and pool is not None:
        backend = pool.backend
    if backend is None:
        chunk_bytes = plan.nbytes * max(chunks)
        backend = "process" if chunk_bytes >= PROCESS_BACKEND_MIN_BYTES else "thread"
    token = plan_token_for(program, first, coefficients)
    ctx = _DispatchContext(
        pool=pool,
        workers=workers,
        policy=policy if policy is not None else DEFAULT_POLICY,
        faults=fault_plan if fault_plan is not None else FaultPlan.from_env(),
    )
    batch = PendingBatch(
        batch_fields, plan, niter, token=token, stats=stats, ctx=ctx,
        native=native,
    )
    if cancel is not None:
        batch.cancel_token = cancel
    with obs.span(
        "parallel.submit",
        program=program.name,
        batch=len(batch_fields),
        niter=niter,
        backend=backend,
        chunks=len(chunks),
    ):
        ctx.trace = obs.trace_context()
        try:
            _submit_chunks(batch, chunks, batch_fields, backend)
        except OSError as exc:
            # no shared memory on this host (or it is exhausted): reclaim any
            # segments we did get and fall back to in-process thread transport
            warnings.warn(
                f"shared-memory transport unavailable ({exc!r}); falling back "
                f"to the thread worker backend for this dispatch",
                RuntimeWarning,
                stacklevel=2,
            )
            obs.inc("parallel.shm_fallbacks")
            obs.emit(
                "parallel.shm_fallback",
                program=program.name,
                batch=len(batch_fields),
                error=repr(exc),
            )
            for chunk in batch.pending:
                if chunk.stack is not None:
                    chunk.stack.unlink()
                    chunk.stack = None
                chunk.future = None
                chunk.backend = ""
                chunk.attempts = 0
            batch.pending = []
            backend = "thread"
            _submit_chunks(batch, chunks, batch_fields, backend)
        obs.emit(
            "exec.dispatch",
            program=program.name,
            backend=backend,
            workers=workers,
            chunks=list(chunks),
            niter=niter,
        )
    batch.backend = backend
    _account(chunks, backend)
    return batch


def _submit_chunks(
    batch: PendingBatch,
    chunks: list[int],
    batch_fields: Sequence[Mapping[str, Field]],
    backend: str,
) -> None:
    start = 0
    for index, size in enumerate(chunks):
        chunk = _PendingChunk(
            index, start, size, members=batch_fields[start : start + size]
        )
        batch.pending.append(chunk)  # tracked before submit: cleanup-safe
        _dispatch(batch, chunk, backend)
        start += size


def run_program_parallel(
    program: StencilProgram,
    batch_fields: Sequence[Mapping[str, Field]],
    niter: int,
    coefficients: Mapping[str, float] | None = None,
    cache: CompiledPlanCache | None = None,
    max_stack_bytes: float | None = None,
    stats: dict | None = None,
    max_workers: int | None = None,
    backend: str | None = None,
    pool: WorkerPool | None = None,
    policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    cancel: CancelToken | None = None,
    native: bool | None = None,
) -> list[dict[str, Field]]:
    """Solve ``B`` same-spec meshes with chunks fanned across the pool.

    The parallel drop-in for
    :func:`~repro.stencil.compiled.run_program_stacked`: identical
    signature semantics plus pool controls, identical chunk schedule and
    ``stats`` accounting, bit-identical per-mesh results (asserted across
    every registry app in the test suite). See :func:`submit_stacked` for
    the backend-selection, degenerate-path and recovery rules.
    """
    return submit_stacked(
        program, batch_fields, niter, coefficients,
        cache=cache, max_stack_bytes=max_stack_bytes, stats=stats,
        max_workers=max_workers, backend=backend, pool=pool,
        policy=policy, fault_plan=fault_plan, cancel=cancel, native=native,
    ).result()
