"""Worker-side chunk execution with a per-worker compiled-plan cache.

Each task message carries the lowered :class:`~repro.stencil.plan.ProgramPlan`
(plans are small, hold no buffers, and pickle cheaply) together with its
**plan token** — the parent-computed identity of ``(program structure,
bound field specs, folded coefficients)``. Workers bind the plan to
concrete buffers at most once per ``(token, batch)``: repeat chunks of the
same job shape fetch the warm :class:`CompiledProgram` from the
worker-local cache and only pay the load/iterate/store cost.

The caches are deliberately **per worker** rather than the process-wide
:data:`repro.stencil.compiled.DEFAULT_CACHE`: a shared compiled instance
serializes concurrent runs on its internal lock (correct but sequential),
while a private instance per worker keeps every lane independent — in
processes trivially (separate address spaces), in threads via
``threading.local``.

A test-only escape hatch (:data:`CRASH_ENV`) lets the suite provoke a hard
worker death (``os._exit``) through the full dispatch path, which is the
only way to exercise broken-pool recovery deterministically.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from typing import Any, Mapping, Sequence

import numpy as np

from repro.mesh.mesh import Field
from repro.observability.tracing import TraceContext, Tracer
from repro.parallel.shm import SharedStack, StackHandle
from repro.resilience.faults import Fault, checksum_arrays, corrupt_first_value
from repro.stencil.compiled import CompiledProgram
from repro.stencil.plan import ProgramPlan

#: bound instances kept warm per worker; small meshes bind in microseconds,
#: so this only needs to cover the live job shapes of a mix
_MAX_INSTANCES = 16

#: set to "1" to make every chunk task kill its worker process outright —
#: the deterministic stand-in for an OOM-killed worker in the test suite
CRASH_ENV = "REPRO_PARALLEL_TEST_CRASH"

#: one instance cache per worker lane: thread-local state gives process
#: workers (which run tasks serially on their main thread) one cache per
#: process, and thread-pool workers one cache per thread — either way no
#: two concurrent tasks can ever share (and race on) a bound instance
_TLS = threading.local()


def _cache() -> OrderedDict:
    cache = getattr(_TLS, "instances", None)
    if cache is None:
        cache = _TLS.instances = OrderedDict()
    return cache


def bind_instance(
    token: str, plan: ProgramPlan, batch: int, native: bool = False
) -> CompiledProgram:
    """The worker-local compiled instance for ``(token, batch, native)``.

    Binds (allocates buffers for) the plan on first sight, then reuses the
    warm instance — the per-worker analogue of
    :meth:`repro.stencil.compiled.CompiledPlanCache.get`, keyed by the
    parent's plan token so equal bindings share work without re-hashing
    the program structure worker-side. ``native=True`` binds a
    :class:`~repro.stencil.native.NativeProgram` instead — the worker pays
    the one-time lowering (the cc artifact is shared on disk across
    workers), then every repeat chunk rides the generated steady loop.
    """
    cache = _cache()
    key = (token, batch, native)
    instance = cache.get(key)
    if instance is None:
        if native:
            from repro.stencil.native import NativeProgram as _cls
        else:
            _cls = CompiledProgram
        instance = _cls(plan, batch=batch)
        cache[key] = instance
        while len(cache) > _MAX_INSTANCES:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return instance


def _apply_entry_fault(fault: Fault | None, process: bool) -> None:
    """Fire a task-entry fault (``crash``/``slow``) before any work runs.

    A process-backend crash is a hard ``os._exit`` — the worker dies the
    way an OOM kill would and breaks the pool; threads cannot take the
    process down, so there the crash is a raised exception, matching what
    the parent of a thread pool would actually observe.
    """
    if fault is None:
        return
    if fault.kind == "crash":
        if process:  # pragma: no cover - exits the worker process
            os._exit(13)
        raise RuntimeError("injected worker crash")
    if fault.kind == "slow":
        time.sleep(fault.seconds)


def _worker_tracer(trace: TraceContext | None) -> Tracer | None:
    """A throwaway tracer seeded with the parent's shipped trace position.

    Spans it records become children of the parent's submit-side span once
    the parent :meth:`~repro.observability.tracing.Tracer.adopt`\\ s the
    returned dicts — observability state never crosses the process
    boundary by reference, only these values do.
    """
    if trace is None:
        return None
    return Tracer(
        trace_id=trace.trace_id,
        root_parent=trace.parent_id,
        # a namespace disjoint from the parent's "s" ids: the shipped
        # parent reference travels by id, so worker ids must never
        # textually collide with it
        id_prefix=f"w{os.getpid()}.",
    )


def _span_dicts(tracer: Tracer | None) -> list[dict[str, Any]] | None:
    return [r.to_dict() for r in tracer.records()] if tracer else None


def _load_and_run(
    instance: CompiledProgram,
    plan: ProgramPlan,
    batch: int,
    niter: int,
    fetch,
) -> None:
    """Load stacked inputs (``fetch(name) -> (B, *storage)``) and iterate."""
    if batch == 1:
        instance.load({name: fetch(name)[0] for name in plan.inputs})
    else:
        instance.load({name: fetch(name) for name in plan.inputs})
    instance.run_iterations(niter)


def run_chunk_shm(
    token: str,
    plan: ProgramPlan,
    batch: int,
    niter: int,
    handle: StackHandle,
    trace: TraceContext | None = None,
    fault: Fault | None = None,
    checksum: bool = False,
    native: bool = False,
) -> dict[str, Any]:
    """Execute one chunk against shared-memory buffers (process backend).

    Inputs are read from — and every produced field written back to — the
    parent's :class:`SharedStack`, so no array crosses the process boundary
    through the task pipe; the result fields live in the segment. Returns
    the chunk's worker-measured wall-clock ``seconds`` plus, when the
    parent shipped a :class:`TraceContext`, the worker-side ``spans`` for
    it to adopt, and with ``checksum=True`` a CRC per produced field
    (computed before the data leaves the worker, so the parent can detect
    transport corruption). An armed :class:`Fault` fires at its injection
    point: crash/slow on entry, shm at attach, corrupt after checksumming.
    """
    if os.environ.get(CRASH_ENV) == "1":  # pragma: no cover - exits
        os._exit(13)
    _apply_entry_fault(fault, process=True)
    tracer = _worker_tracer(trace)
    t0 = time.perf_counter()
    stack = SharedStack.attach(handle, fail=fault is not None and fault.kind == "shm")
    try:
        ctx = (
            tracer.span(
                "worker.chunk",
                token=token, batch=batch, niter=niter,
                backend="process", pid=os.getpid(),
            )
            if tracer is not None
            else nullcontext()
        )
        with ctx:
            instance = bind_instance(token, plan, batch, native=native)
            _load_and_run(
                instance, plan, batch, niter, lambda n: stack.array(f"i:{n}")
            )
            finals = instance.final_arrays()
            for fname, final in finals.items():
                np.copyto(stack.array(f"o:{fname}"), final)
            # only transient views of the segment below: anything retained
            # past the finally would make stack.close() raise BufferError
            checksums = (
                checksum_arrays({f: stack.array(f"o:{f}") for f in finals})
                if checksum
                else None
            )
            if fault is not None and fault.kind == "corrupt":
                corrupt_first_value({f: stack.array(f"o:{f}") for f in finals})
    finally:
        stack.close()
    return {
        "seconds": time.perf_counter() - t0,
        "spans": _span_dicts(tracer),
        "checksums": checksums,
    }


def run_chunk_fields(
    token: str,
    plan: ProgramPlan,
    batch: int,
    niter: int,
    envs: Sequence[Mapping[str, Field]],
    trace: TraceContext | None = None,
    fault: Fault | None = None,
    checksum: bool = False,
    native: bool = False,
) -> dict[str, Any]:
    """Execute one chunk on in-process field environments (thread backend).

    Threads share the parent's address space, so the per-mesh environments
    travel by reference and load straight into the instance's buffers —
    the same single copy the serial engine performs. Returns stacked
    ``(B, *storage)`` copies of the produced fields under ``"fields"`` —
    copies, because the warm instance's buffers are overwritten by this
    worker's next task — plus worker-measured ``seconds``, optional
    ``spans`` and optional per-field ``checksums``, mirroring
    :func:`run_chunk_shm`. Faults fire at the analogous injection points;
    the ``shm`` kind raises the same ``OSError`` even though threads carry
    no segment, so a plan behaves uniformly across backends.
    """
    if os.environ.get(CRASH_ENV) == "1":  # threads cannot crash a process;
        raise RuntimeError("crash requested by test hook")  # raise instead
    _apply_entry_fault(fault, process=False)
    if fault is not None and fault.kind == "shm":
        raise OSError("injected shm attach failure")
    tracer = _worker_tracer(trace)
    t0 = time.perf_counter()
    ctx = (
        tracer.span(
            "worker.chunk",
            token=token, batch=batch, niter=niter,
            backend="thread", pid=os.getpid(),
        )
        if tracer is not None
        else nullcontext()
    )
    with ctx:
        instance = bind_instance(token, plan, batch, native=native)
        if batch == 1:
            instance.load(envs[0])
        else:
            instance.load_stacked(envs)
        instance.run_iterations(niter)
        out = instance.final_arrays()
        fields = {fname: arr.copy() for fname, arr in out.items()}
        checksums = checksum_arrays(fields) if checksum else None
        if fault is not None and fault.kind == "corrupt":
            corrupt_first_value(fields)
    return {
        "fields": fields,
        "seconds": time.perf_counter() - t0,
        "spans": _span_dicts(tracer),
        "checksums": checksums,
    }


def instance_cache_size() -> int:
    """Warm instances in this lane's cache (introspection for tests)."""
    return len(_cache())
