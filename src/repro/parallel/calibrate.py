"""Per-host calibration of the stacked-dispatch footprint budget.

The chunked stacked scheduler bounds each stack's working set by a byte
budget (:data:`repro.stencil.compiled.STACKED_BYTES_LIMIT`): too small and
per-mesh Python dispatch dominates, too large and the stacked stream
falls out of cache. The right crossover is a property of the *host* —
cache sizes, core count, allocator — not of the code, so a hardcoded
1 MiB is only ever approximately right.

:func:`calibrated_bytes_limit` replaces the constant with a measured one:
a one-shot probe times the chunked stacked engine over a ladder of
candidate budgets on a small Jacobi-3D workload (the cheapest registry
app with a realistic tape) and keeps the fastest. The result is cached on
disk keyed by ``host : cpu count : dtype``, so every later process on the
same host pays a file read, not a probe. ``REPRO_STACKED_BYTES_LIMIT``
overrides the whole mechanism (CI uses it for determinism), and
``REPRO_CALIBRATION_CACHE`` relocates the cache file (tests point it at a
tmp dir).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.stencil.compiled import (
    STACKED_BYTES_LIMIT,
    CompiledPlanCache,
    run_program_stacked,
)

#: candidate budgets, bytes; 0 means "per-mesh replay" (no stacking) and
#: anchors the low end so a host where stacking never pays is representable
DEFAULT_BUDGETS = (0, 1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22)

#: probe workload: small enough to finish in well under a second, large
#: enough that the budget actually changes the chunk schedule
_PROBE_SHAPE = (24, 24, 16)
_PROBE_BATCH = 48
_PROBE_NITER = 4
_PROBE_REPEATS = 3

#: cache-format version; bump to invalidate stale entries on upgrade
_VERSION = 1

ENV_OVERRIDE = "REPRO_STACKED_BYTES_LIMIT"
ENV_CACHE = "REPRO_CALIBRATION_CACHE"

#: per-process memo so repeated calls do not re-read the file
_MEMO: dict[str, int] = {}


def cache_path() -> Path:
    """The calibration cache file for this user (env-relocatable)."""
    override = os.environ.get(ENV_CACHE)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro" / "calibration.json"


def host_key(dtype=np.float32) -> str:
    """The cache key: one entry per (host, core count, element type)."""
    return f"{platform.node()}:{os.cpu_count() or 1}:{np.dtype(dtype).str}"


def _probe_envs(dtype):
    from repro.apps.registry import app_by_name
    from repro.mesh.mesh import Field, MeshSpec
    from repro.stencil.plan import required_inputs

    app = app_by_name("jacobi3d")
    spec = MeshSpec(
        _PROBE_SHAPE, app.program.mesh.components, np.dtype(dtype)
    )
    program = app.program.with_mesh(spec)
    envs = [
        {
            name: Field.random(name, spec, seed=b)
            for name in required_inputs(program)
        }
        for b in range(_PROBE_BATCH)
    ]
    return program, envs


def run_probe(dtype=np.float32, budgets=DEFAULT_BUDGETS) -> dict:
    """Time the chunked engine per candidate budget; return the ladder.

    Returns ``{"best": bytes, "timings": {str(budget): seconds}}`` where
    each timing is best-of-:data:`_PROBE_REPEATS` wall clock for the full
    probe batch. A private plan cache keeps the probe from evicting the
    caller's warm plans.
    """
    program, envs = _probe_envs(dtype)
    cache = CompiledPlanCache()
    timings: dict[str, float] = {}
    # warm the plan (and the allocator) outside the timed region
    run_program_stacked(program, envs, _PROBE_NITER, cache=cache)
    for budget in budgets:
        best = float("inf")
        for _ in range(_PROBE_REPEATS):
            t0 = time.perf_counter()
            run_program_stacked(
                program, envs, _PROBE_NITER, cache=cache,
                max_stack_bytes=float(budget),
            )
            best = min(best, time.perf_counter() - t0)
        timings[str(budget)] = best
    best_budget = min(budgets, key=lambda b: timings[str(b)])
    return {"best": int(best_budget), "timings": timings}


def _load_cache(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        return {}
    entries = data.get("entries")
    return entries if isinstance(entries, dict) else {}


def _store_cache(path: Path, entries: dict) -> None:
    """Write the cache atomically: temp file in the same directory + rename.

    A process killed mid-write (or two concurrent probes racing) must
    never leave a truncated ``calibration.json`` behind — readers would
    survive it (:func:`_load_cache` treats corrupt JSON as empty) but
    every later process would silently re-probe.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump({"version": _VERSION, "entries": entries}, fh, indent=2)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:  # read-only home: calibration still works, just re-probes
        pass


def calibrated_bytes_limit(dtype=np.float32, force: bool = False) -> int:
    """The measured stacking budget for this host and element type.

    Resolution order: the :data:`ENV_OVERRIDE` environment variable, the
    in-process memo, the on-disk cache, and finally a fresh probe (whose
    result is written back for every later process). ``force=True`` skips
    memo and disk and re-probes. Falls back to the static
    :data:`STACKED_BYTES_LIMIT` if the probe itself fails.
    """
    override = os.environ.get(ENV_OVERRIDE)
    if override:
        return int(float(override))
    key = host_key(dtype)
    if not force:
        memo = _MEMO.get(key)
        if memo is not None:
            return memo
        entries = _load_cache(cache_path())
        entry = entries.get(key)
        if isinstance(entry, dict) and isinstance(
            entry.get("stacked_bytes_limit"), int
        ):
            _MEMO[key] = entry["stacked_bytes_limit"]
            return _MEMO[key]
    try:
        probe = run_probe(dtype)
    except Exception:  # pragma: no cover - probe is best-effort by design
        return STACKED_BYTES_LIMIT
    path = cache_path()
    entries = _load_cache(path)
    entries[key] = {
        "stacked_bytes_limit": probe["best"],
        "timings": probe["timings"],
        "probed_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    _store_cache(path, entries)
    _MEMO[key] = probe["best"]
    return probe["best"]


def cached_entry(dtype=np.float32) -> dict | None:
    """The stored calibration record for this host, if any (for reporting)."""
    return _load_cache(cache_path()).get(host_key(dtype))


def forget_memo() -> None:
    """Drop the in-process memo (tests re-point the cache file)."""
    _MEMO.clear()
