"""Parallel chunk fan-out behind the compiled-plan API.

The ``engine="parallel"`` backend: the serial compiled engine's chunked
stacked schedule, dispatched across a persistent worker pool instead of a
loop. Process workers move chunk data through shared memory
(:mod:`repro.parallel.shm`), thread workers share the address space, and
every worker keeps its own warm compiled-plan instances
(:mod:`repro.parallel.worker`). Results are bit-identical to the serial
compiled engine — and therefore to the golden interpreter.

:mod:`repro.parallel.calibrate` replaces the static stacking byte budget
with a measured per-host one, cached on disk.
"""

from repro.parallel.calibrate import calibrated_bytes_limit, run_probe
from repro.parallel.executor import (
    ParallelExecutionError,
    PendingBatch,
    plan_token_for,
    run_program_parallel,
    submit_stacked,
)
from repro.parallel.pool import (
    BACKENDS,
    WorkerPool,
    default_workers,
    shared_pool,
    shutdown_shared_pools,
)
from repro.parallel.shm import SharedStack

__all__ = [
    "BACKENDS",
    "ParallelExecutionError",
    "PendingBatch",
    "SharedStack",
    "WorkerPool",
    "calibrated_bytes_limit",
    "default_workers",
    "plan_token_for",
    "run_probe",
    "run_program_parallel",
    "shared_pool",
    "shutdown_shared_pools",
    "submit_stacked",
]
