"""Persistent worker pools for chunk fan-out.

A :class:`WorkerPool` wraps a ``concurrent.futures`` executor — **process**
backed by default (each worker is an OS process with its own interpreter,
so NumPy tape replays scale across cores regardless of the GIL), with a
**thread** backend used as the fallback for small meshes, where the cost
of crossing a process boundary would eat the win (NumPy releases the GIL
inside large ufunc calls, so threads still overlap medium-sized chunks).

Pools are deliberately *persistent*: workers are started lazily on first
submit and then reused across dispatches, so the per-chunk cost is one
task message, not one process spawn — the per-worker compiled-plan cache
(:mod:`repro.parallel.worker`) only pays off because the worker outlives
the chunk. :func:`shared_pool` hands out process-wide singletons keyed by
``(backend, max_workers)``; they are torn down at interpreter exit.

A crashed worker (e.g. OOM-killed) breaks a process executor permanently;
:class:`WorkerPool` detects the broken state on the next submit and
replaces the executor transparently, so one lost batch does not poison
every later dispatch through a shared pool.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    process,
)

from repro import observability as obs
from repro.util.errors import ValidationError

#: worker-pool backends accepted across the parallel layer
BACKENDS = ("process", "thread")


def check_backend(backend: str) -> str:
    """Validate a pool backend name; returns it unchanged."""
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown pool backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def default_workers() -> int:
    """The default pool width: every core the host exposes."""
    return os.cpu_count() or 1


class WorkerPool:
    """A persistent, lazily-started pool of process or thread workers."""

    def __init__(self, max_workers: int | None = None, backend: str = "process"):
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.backend = check_backend(backend)
        self.max_workers = max_workers if max_workers else default_workers()
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    @property
    def started(self) -> bool:
        """True once workers exist (first submit starts them)."""
        return self._executor is not None

    def _make_executor(self):
        if self.backend == "thread":
            return ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-parallel",
            )
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _ensure(self):
        with self._lock:
            executor = self._executor
            if executor is None:
                executor = self._executor = self._make_executor()
            return executor

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)`` on a worker.

        A process executor broken by an earlier worker crash is replaced
        with a fresh one (once) instead of failing every future submit.
        """
        executor = self._ensure()
        try:
            future = executor.submit(fn, *args, **kwargs)
        except (process.BrokenProcessPool, RuntimeError):
            with self._lock:
                if self._executor is executor:  # nobody replaced it yet
                    executor.shutdown(wait=False, cancel_futures=True)
                    self._executor = self._make_executor()
                executor = self._executor
            obs.inc("pool.recoveries", backend=self.backend)
            obs.emit(
                "pool.recovered",
                backend=self.backend,
                workers=self.max_workers,
            )
            future = executor.submit(fn, *args, **kwargs)
        if obs.is_enabled():
            obs.inc("pool.submits", backend=self.backend)
            submitted = time.perf_counter()
            backend = self.backend

            def _observe_latency(fut: Future) -> None:
                obs.observe(
                    "pool.task_seconds",
                    time.perf_counter() - submitted,
                    backend=backend,
                )

            future.add_done_callback(_observe_latency)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; the pool restarts lazily on the next submit."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


#: process-wide pools shared by every default parallel dispatch path
_SHARED: dict[tuple[str, int], WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(backend: str = "process", max_workers: int | None = None) -> WorkerPool:
    """The process-wide persistent pool for ``(backend, max_workers)``.

    Sharing keeps workers (and their per-worker plan caches) warm across
    dispatches, mixes and benchmark repeats; distinct widths get distinct
    pools so an explicit ``max_workers=`` can never be diluted by an
    earlier caller's choice.
    """
    check_backend(backend)
    key = (backend, max_workers if max_workers else default_workers())
    with _SHARED_LOCK:
        pool = _SHARED.get(key)
        if pool is None:
            pool = _SHARED[key] = WorkerPool(key[1], backend)
        return pool


def shutdown_shared_pools(wait: bool = True) -> None:
    """Tear down every shared pool (used at exit and by tests)."""
    with _SHARED_LOCK:
        pools = list(_SHARED.values())
        _SHARED.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_shared_pools, wait=False)
