"""Persistent worker pools for chunk fan-out.

A :class:`WorkerPool` wraps a ``concurrent.futures`` executor — **process**
backed by default (each worker is an OS process with its own interpreter,
so NumPy tape replays scale across cores regardless of the GIL), with a
**thread** backend used as the fallback for small meshes, where the cost
of crossing a process boundary would eat the win (NumPy releases the GIL
inside large ufunc calls, so threads still overlap medium-sized chunks).

Pools are deliberately *persistent*: workers are started lazily on first
submit and then reused across dispatches, so the per-chunk cost is one
task message, not one process spawn — the per-worker compiled-plan cache
(:mod:`repro.parallel.worker`) only pays off because the worker outlives
the chunk. :func:`shared_pool` hands out process-wide singletons keyed by
``(backend, max_workers)``; they are torn down at interpreter exit.

A crashed worker (e.g. OOM-killed) breaks a process executor permanently.
:class:`WorkerPool` recovers on **both** sides of that break: a submit
that finds the executor broken replaces it and retries (as before), and
every future it hands out is a :class:`PoolFuture` that, when the
executor breaks *underneath* an already-submitted task, transparently
resubmits that task once on the replacement executor — in-flight futures
no longer surface a raw ``BrokenProcessPool`` at collect time while the
next submit sails through on a fresh pool. :meth:`WorkerPool.reset`
additionally supports killing hung worker processes outright (the
resilience layer calls it when a chunk misses its deadline).
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    process,
)

from repro import observability as obs
from repro.util.errors import ValidationError

#: worker-pool backends accepted across the parallel layer
BACKENDS = ("process", "thread")


def check_backend(backend: str) -> str:
    """Validate a pool backend name; returns it unchanged."""
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown pool backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def default_workers() -> int:
    """The default pool width: every core the host exposes."""
    return os.cpu_count() or 1


class PoolFuture:
    """A pool task whose broken-executor death is resubmitted once.

    Wraps the executor future together with its ``(fn, args, kwargs)`` so
    that a :class:`~concurrent.futures.BrokenExecutor` raised at
    :meth:`result` — the fate of every in-flight future when a sibling
    task kills its worker — re-runs the task on the pool's replacement
    executor instead of surfacing an error the task did not cause. One
    resubmit only: a task that breaks the pool *again* is the problem
    itself and its error propagates. A cancelled future never resubmits
    (cancellation means the caller is abandoning the work).
    """

    __slots__ = ("_pool", "_fn", "_args", "_kwargs", "_inner",
                 "_resubmitted", "_abandoned")

    def __init__(self, pool: "WorkerPool", fn, args, kwargs):
        self._pool = pool
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._resubmitted = False
        self._abandoned = False
        self._inner: Future = pool._submit_once(fn, args, kwargs)

    def result(self, timeout: float | None = None):
        """The task's result; resubmits once if the executor broke."""
        try:
            return self._inner.result(timeout)
        except BrokenExecutor:
            if self._resubmitted or self._abandoned:
                raise
            self._resubmitted = True
            obs.inc("pool.recoveries", backend=self._pool.backend)
            obs.emit(
                "pool.recovered",
                backend=self._pool.backend,
                workers=self._pool.max_workers,
                inflight_resubmit=True,
            )
            self._inner = self._pool._submit_once(
                self._fn, self._args, self._kwargs
            )
            return self._inner.result(timeout)

    def exception(self, timeout: float | None = None):
        """The task's exception (after any resubmit), or None."""
        try:
            self.result(timeout)
        except BaseException as exc:  # noqa: BLE001 - mirror Future API
            return exc
        return None

    def cancel(self) -> bool:
        """Cancel the task and disable any further resubmission."""
        self._abandoned = True
        return self._inner.cancel()

    def done(self) -> bool:
        return self._inner.done()

    def add_done_callback(self, fn) -> None:
        """Attach to the *current* inner future (may re-fire on resubmit)."""
        self._inner.add_done_callback(fn)


class WorkerPool:
    """A persistent, lazily-started pool of process or thread workers."""

    def __init__(self, max_workers: int | None = None, backend: str = "process"):
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.backend = check_backend(backend)
        self.max_workers = max_workers if max_workers else default_workers()
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        """Tasks submitted but not yet resolved (running or queued).

        Every submit increments the count and every future resolution —
        result, exception, or *cancellation* — decrements it through the
        future's done callback, so a cancelled not-yet-started task
        releases its slot immediately instead of being accounted as
        in-flight until the next pool reset.
        """
        with self._lock:
            return self._inflight

    @property
    def started(self) -> bool:
        """True once workers exist (first submit starts them)."""
        return self._executor is not None

    def _make_executor(self):
        if self.backend == "thread":
            return ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-parallel",
            )
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _ensure(self):
        with self._lock:
            executor = self._executor
            if executor is None:
                executor = self._executor = self._make_executor()
            return executor

    def _submit_once(self, fn, args, kwargs) -> Future:
        """Submit on the live executor, replacing a broken one (once)."""
        executor = self._ensure()
        try:
            future = executor.submit(fn, *args, **kwargs)
        except (process.BrokenProcessPool, RuntimeError):
            with self._lock:
                if self._executor is executor:  # nobody replaced it yet
                    executor.shutdown(wait=False, cancel_futures=True)
                    self._executor = self._make_executor()
                executor = self._executor
            obs.inc("pool.recoveries", backend=self.backend)
            obs.emit(
                "pool.recovered",
                backend=self.backend,
                workers=self.max_workers,
            )
            future = executor.submit(fn, *args, **kwargs)
        with self._lock:
            self._inflight += 1

        def _release_slot(_fut: Future) -> None:
            with self._lock:
                self._inflight -= 1
                count = self._inflight
            if obs.is_enabled():
                obs.set_gauge("pool.inflight", count, backend=self.backend)

        future.add_done_callback(_release_slot)
        if obs.is_enabled():
            obs.inc("pool.submits", backend=self.backend)
            submitted = time.perf_counter()
            backend = self.backend

            def _observe_latency(fut: Future) -> None:
                obs.observe(
                    "pool.task_seconds",
                    time.perf_counter() - submitted,
                    backend=backend,
                )

            future.add_done_callback(_observe_latency)
        return future

    def submit(self, fn, /, *args, **kwargs) -> PoolFuture:
        """Schedule ``fn(*args, **kwargs)`` on a worker.

        Broken-pool recovery is consistent on both ends of the task's
        life: a submit that finds the executor broken replaces it and
        retries, and the returned :class:`PoolFuture` resubmits the task
        once if the executor breaks while it is in flight.
        """
        return PoolFuture(self, fn, args, kwargs)

    def reset(self, kill: bool = False) -> None:
        """Replace the executor; the pool restarts lazily on the next submit.

        With ``kill=True`` on the process backend, live worker processes
        are terminated first — the hung-worker remedy: a worker stuck past
        its chunk deadline never frees its lane on its own, so the
        resilience layer kills the pool and resubmits elsewhere. In-flight
        futures fail with ``BrokenExecutor`` and recover through their
        :class:`PoolFuture` resubmit (or their caller's retry policy).
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is None:
            return
        if kill and isinstance(executor, ProcessPoolExecutor):
            for proc in list(getattr(executor, "_processes", {}).values()):
                try:  # pragma: no cover - racing a normal worker exit
                    proc.terminate()
                except Exception:  # noqa: BLE001 - already gone
                    pass
        executor.shutdown(wait=False, cancel_futures=True)
        obs.inc("pool.resets", backend=self.backend, killed=kill)
        obs.emit("pool.reset", backend=self.backend, killed=kill)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; the pool restarts lazily on the next submit."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


#: process-wide pools shared by every default parallel dispatch path
_SHARED: dict[tuple[str, int], WorkerPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(backend: str = "process", max_workers: int | None = None) -> WorkerPool:
    """The process-wide persistent pool for ``(backend, max_workers)``.

    Sharing keeps workers (and their per-worker plan caches) warm across
    dispatches, mixes and benchmark repeats; distinct widths get distinct
    pools so an explicit ``max_workers=`` can never be diluted by an
    earlier caller's choice.
    """
    check_backend(backend)
    key = (backend, max_workers if max_workers else default_workers())
    with _SHARED_LOCK:
        pool = _SHARED.get(key)
        if pool is None:
            pool = _SHARED[key] = WorkerPool(key[1], backend)
        return pool


def shutdown_shared_pools(wait: bool = True) -> None:
    """Tear down every shared pool (used at exit and by tests)."""
    with _SHARED_LOCK:
        pools = list(_SHARED.values())
        _SHARED.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


def _drain_shared_pools_at_exit() -> None:
    """Interpreter-exit hook: **drain** the shared singleton pools.

    Queued tasks are cancelled (``cancel_futures=True`` inside
    :meth:`WorkerPool.shutdown`) but running ones are waited out — tearing
    the executors down with work still running races the multiprocessing
    resource tracker over the workers' shared-memory attachments and
    produces intermittent ``/dev/shm`` leak warnings at exit. Tape replays
    are bounded, so the wait is too.
    """
    shutdown_shared_pools(wait=True)


atexit.register(_drain_shared_pools_at_exit)
