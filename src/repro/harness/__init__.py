"""Experiment harness: one registered experiment per paper table and figure.

Each experiment reproduces the corresponding artifact — same workloads, same
rows/series — using the analytic model (the paper's "Pred" series), the
dataflow simulator's structural estimate (the "measured-like" series) and
the GPU baseline model, side by side with the paper's reported numbers from
:mod:`repro.harness.paper_data`.
"""

from repro.harness.paper_data import (
    TABLE2,
    TABLE3,
    FIG3A,
    FIG4A,
    FIG5A,
    TABLE4_BASELINE,
    TABLE4_TILED,
    TABLE5_BASELINE,
    TABLE5_TILED,
    TABLE6,
    Fig3aRow,
)
from repro.harness.experiments import (
    Experiment,
    all_experiments,
    experiment_by_id,
)
from repro.harness.series import export_series, export_all_series, result_to_csv
from repro.harness.runner import (
    run_table2,
    run_table3,
    run_fig3a,
    run_fig3b,
    run_fig3c,
    run_table4,
    run_fig4a,
    run_fig4b,
    run_fig4c,
    run_table5,
    run_fig5a,
    run_fig5b,
    run_table6,
)

__all__ = [
    "TABLE2",
    "TABLE3",
    "FIG3A",
    "FIG4A",
    "FIG5A",
    "TABLE4_BASELINE",
    "TABLE4_TILED",
    "TABLE5_BASELINE",
    "TABLE5_TILED",
    "TABLE6",
    "Fig3aRow",
    "Experiment",
    "all_experiments",
    "experiment_by_id",
    "export_series",
    "export_all_series",
    "result_to_csv",
    "run_table2",
    "run_table3",
    "run_fig3a",
    "run_fig3b",
    "run_fig3c",
    "run_table4",
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
    "run_table5",
    "run_fig5a",
    "run_fig5b",
    "run_table6",
]
