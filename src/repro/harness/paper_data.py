"""Digitized data from the paper's tables and figures.

Sources:

* Table II / Table III — printed verbatim in the paper.
* Figures 3(a), 4(a), 5(a) — bar data labels printed in the figures.
* Tables IV, V, VI — bandwidth (GB/s) and energy (kJ) tables.
* Figures 3(b,c), 4(b,c), 5(b) — not labelled numerically in the text;
  where needed, runtimes are derived from the corresponding bandwidth
  tables via the paper's own convention
  ``runtime = logical_bytes / bandwidth`` (noted per entry).

All bandwidths are decimal GB/s, energies kJ, runtimes seconds, meshes in
paper ``(m, n[, l])`` order.
"""

from __future__ import annotations

from dataclasses import dataclass


# --------------------------------------------------------------------------- #
# Table II: baseline/batching model parameters
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Table2Row:
    """One application row of Table II."""

    app: str
    freq_mhz: float
    gdsp: int
    pdsp_model: int
    pdsp_actual: int


TABLE2 = (
    Table2Row("Poisson-5pt-2D", 250.0, 14, 68, 60),
    Table2Row("Jacobi-7pt-3D", 246.0, 33, 28, 29),
    Table2Row("RTM-forward", 261.0, 2444, 3, 3),
)


# --------------------------------------------------------------------------- #
# Table III: spatial blocking model parameters
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Table3Row:
    """One application row of Table III."""

    app: str
    p: int
    V: int
    M: int
    N: int | None
    throughput: float  # valid cells per clock
    valid_ratio: float


TABLE3 = (
    Table3Row("Poisson-5pt-2D", 60, 8, 8192, None, 472.0, 0.985),
    Table3Row("Jacobi-7pt-3D", 3, 64, 768, 768, 189.0, 0.984),
)


# --------------------------------------------------------------------------- #
# Figure 3(a): Poisson baseline runtimes, 60000 iterations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Fig3aRow:
    """One mesh size of a baseline runtime figure."""

    mesh: tuple[int, ...]
    fpga_s: float
    gpu_s: float


POISSON_BASE_ITERS = 60000
FIG3A = (
    Fig3aRow((200, 100), 0.03, 0.51),
    Fig3aRow((200, 200), 0.04, 0.56),
    Fig3aRow((300, 150), 0.04, 0.43),
    Fig3aRow((300, 300), 0.06, 0.59),
    Fig3aRow((400, 200), 0.06, 0.58),
    Fig3aRow((400, 400), 0.10, 0.62),
)


# --------------------------------------------------------------------------- #
# Table IV: Poisson bandwidth (GB/s) and energy (kJ)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BWRow:
    """Bandwidths for one mesh across baseline and batched runs (GB/s)."""

    mesh: tuple[int, ...]
    fpga_base: float
    gpu_base: float
    fpga_batch_small: float | None  # 100B (Poisson) / 10B (Jacobi) / 20B (RTM)
    gpu_batch_small: float | None
    fpga_batch_large: float | None  # 1000B / 50B / 40B
    gpu_batch_large: float | None
    fpga_energy_kj: float | None  # at the large batch
    gpu_energy_kj: float | None


TABLE4_BASELINE = (
    BWRow((200, 100), 384, 18, 857, 404, 867, 530, 0.77, 3.48),
    BWRow((200, 200), 543, 32, 886, 465, 892, 540, 1.50, 6.74),
    BWRow((300, 150), 535, 38, 901, 483, 907, 560, 1.66, 7.60),
    BWRow((300, 300), 681, 69, 922, 530, None, None, None, None),
    BWRow((400, 200), 612, 62, 889, 536, None, None, None, None),
    BWRow((400, 400), 735, 116, 904, 560, None, None, None, None),
)

POISSON_BATCH_SMALL = 100
POISSON_BATCH_LARGE = 1000


@dataclass(frozen=True)
class TiledRow:
    """One (mesh, tile) point of a spatial-blocking table."""

    mesh: tuple[int, ...]
    tile: int
    fpga_bw: float
    gpu_bw: float | None
    fpga_energy_kj: float | None
    gpu_energy_kj: float | None


POISSON_TILED_ITERS = 6000
TABLE4_TILED = (
    TiledRow((15000, 15000), 1024, 805, 607, 0.93, 2.91),
    TiledRow((15000, 15000), 4096, 892, None, 0.84, None),
    TiledRow((15000, 15000), 8000, 905, None, 0.83, None),
    TiledRow((20000, 20000), 1024, 800, 609, 1.67, 4.96),
    TiledRow((20000, 20000), 4096, 879, None, 1.52, None),
    TiledRow((20000, 20000), 8000, 907, None, 1.48, None),
)

#: Fig 3(c) sweeps these tile sizes at 6000 iterations.
POISSON_TILE_SWEEP = (512, 1024, 2048, 4096, 8000)


# --------------------------------------------------------------------------- #
# Figure 4(a): Jacobi baseline runtimes, 29000 iterations
# --------------------------------------------------------------------------- #
JACOBI_BASE_ITERS = 29000
FIG4A = (
    Fig3aRow((50, 50, 50), 0.14, 0.32),
    Fig3aRow((100, 100, 100), 0.77, 0.76),
    Fig3aRow((150, 150, 150), 2.26, 1.61),
    Fig3aRow((200, 200, 200), 4.97, 3.49),
    Fig3aRow((250, 250, 250), 9.28, 6.04),
)


# --------------------------------------------------------------------------- #
# Table V: Jacobi bandwidth (GB/s) and energy (kJ)
# --------------------------------------------------------------------------- #
JACOBI_BATCH_ITERS = 2900
JACOBI_BATCH_SMALL = 10
JACOBI_BATCH_LARGE = 50

TABLE5_BASELINE = (
    BWRow((50, 50, 50), 202, 83, 307, 284, 323, 404, 0.04, 0.07),
    BWRow((100, 100, 100), 301, 284, 378, 434, 387, 469, 0.27, 0.51),
    BWRow((200, 200, 200), 374, 496, 421, 548, 426, 543, 1.96, 3.77),
    BWRow((250, 250, 250), 391, 559, 431, 585, None, None, None, None),
    BWRow((300, 300, 300), 403, 553, 438, 569, None, None, None, None),
)

JACOBI_TILED_ITERS = 120
TABLE5_TILED = (
    TiledRow((600, 600, 600), 256, 233, 392, 0.062, 0.106),
    TiledRow((600, 600, 600), 512, 281, None, 0.051, None),
    TiledRow((600, 600, 600), 640, 292, None, 0.049, None),
    TiledRow((1800, 1800, 100), 256, 247, 363, 0.088, 0.143),
    TiledRow((1800, 1800, 100), 512, 270, None, 0.080, None),
    TiledRow((1800, 1800, 100), 640, 273, None, 0.079, None),
)

#: Fig 4(c) sweeps these tile sizes at 120 iterations.
JACOBI_TILE_SWEEP = (256, 384, 512, 640, 768)


# --------------------------------------------------------------------------- #
# Figure 5(a): RTM baseline runtimes, 1800 iterations
# --------------------------------------------------------------------------- #
RTM_BASE_ITERS = 1800
FIG5A = (
    Fig3aRow((32, 32, 32), 0.28, 0.33),
    Fig3aRow((32, 32, 50), 0.34, 0.40),
    Fig3aRow((50, 50, 16), 0.35, 0.57),
    Fig3aRow((50, 50, 32), 0.56, 0.69),
    Fig3aRow((50, 50, 50), 0.76, 0.83),
    Fig3aRow((50, 50, 200), 2.18, 2.00),
    Fig3aRow((50, 50, 400), 4.12, 3.56),
)


# --------------------------------------------------------------------------- #
# Table VI: RTM bandwidth (GB/s) and energy (kJ)
# --------------------------------------------------------------------------- #
RTM_BATCH_ITERS = 180
RTM_BATCH_SMALL = 20
RTM_BATCH_LARGE = 40

TABLE6 = (
    BWRow((32, 32, 32), 108, 130, 225, 251, 232, 266, 0.043, 0.086),
    BWRow((32, 32, 50), 141, 163, 247, 263, 253, 274, 0.062, 0.133),
    BWRow((50, 50, 16), 77, 124, 210, 251, 220, 263, 0.055, 0.111),
    BWRow((50, 50, 32), 127, 155, 262, 266, 270, 272, 0.091, 0.218),
    BWRow((50, 50, 50), 165, 179, 287, 271, 293, 275, 0.130, 0.338),
)

#: Fig 5(b) uses the first five meshes of FIG5A at 180 iterations.
FIG5B_MESHES = tuple(row.mesh for row in FIG5A[:5])
