"""Figure-series export: the paper figures as machine-readable CSV.

Each figure experiment's records become one CSV with the series as columns,
so the exact bar/line data the benches print can be re-plotted or diffed
externally. ``export_all_series`` writes one file per figure.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.harness.experiments import all_experiments
from repro.harness.runner import ExperimentResult


def result_to_csv(result: ExperimentResult) -> str:
    """Render one experiment's records as CSV text."""
    if not result.records:
        return ""
    fieldnames = list(result.records[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames)
    writer.writeheader()
    for rec in result.records:
        row = {}
        for key, value in rec.items():
            if isinstance(value, tuple):
                value = "x".join(str(v) for v in value)
            row[key] = value
        writer.writerow(row)
    return buf.getvalue()


def export_series(result: ExperimentResult, directory: str | Path) -> Path:
    """Write one experiment's series to ``<directory>/<id>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.csv"
    path.write_text(result_to_csv(result))
    return path


def export_all_series(directory: str | Path = "series") -> list[Path]:
    """Run every registered experiment and export its series; returns paths."""
    paths = []
    for exp in all_experiments():
        paths.append(export_series(exp.run(), directory))
    return paths
