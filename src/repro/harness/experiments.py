"""Experiment registry: id -> runner, mirroring DESIGN.md's experiment index."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.harness import runner
from repro.harness.runner import ExperimentResult
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Experiment:
    """A registered paper artifact reproduction."""

    id: str
    title: str
    kind: str  # "table" | "figure"
    run: Callable[[], ExperimentResult]


_EXPERIMENTS = (
    Experiment("table2", "Table II - model parameters", "table", runner.run_table2),
    Experiment("table3", "Table III - spatial blocking parameters", "table", runner.run_table3),
    Experiment("fig3a", "Fig 3(a) - Poisson baseline", "figure", runner.run_fig3a),
    Experiment("fig3b", "Fig 3(b) - Poisson batching", "figure", runner.run_fig3b),
    Experiment("fig3c", "Fig 3(c) - Poisson spatial blocking", "figure", runner.run_fig3c),
    Experiment("table4", "Table IV - Poisson bandwidth & energy", "table", runner.run_table4),
    Experiment("fig4a", "Fig 4(a) - Jacobi baseline", "figure", runner.run_fig4a),
    Experiment("fig4b", "Fig 4(b) - Jacobi batching", "figure", runner.run_fig4b),
    Experiment("fig4c", "Fig 4(c) - Jacobi spatial blocking", "figure", runner.run_fig4c),
    Experiment("table5", "Table V - Jacobi bandwidth & energy", "table", runner.run_table5),
    Experiment("fig5a", "Fig 5(a) - RTM baseline", "figure", runner.run_fig5a),
    Experiment("fig5b", "Fig 5(b) - RTM batching", "figure", runner.run_fig5b),
    Experiment("table6", "Table VI - RTM bandwidth & energy", "table", runner.run_table6),
    Experiment(
        "dse-convergence", "DSE - strategy convergence", "table",
        runner.run_dse_convergence,
    ),
    Experiment(
        "dse-multifpga", "DSE - multi-FPGA scaling", "table",
        runner.run_dse_multifpga,
    ),
    Experiment(
        "mix-throughput", "Workload mix - chunked stacked scheduling", "table",
        runner.run_mix_throughput,
    ),
)


def all_experiments() -> tuple[Experiment, ...]:
    """Every registered experiment, in paper order."""
    return _EXPERIMENTS


def experiment_by_id(experiment_id: str) -> Experiment:
    """Look up one experiment by its id (e.g. ``fig3a``)."""
    for exp in _EXPERIMENTS:
        if exp.id == experiment_id:
            return exp
    raise ValidationError(
        f"unknown experiment {experiment_id!r}; "
        f"available: {[e.id for e in _EXPERIMENTS]}"
    )
