"""Experiment runners: one function per paper table/figure.

Each runner assembles the paper workloads, evaluates our three estimators —
analytic model ("pred"), dataflow-simulator structural estimate ("sim",
includes host overheads, fills and burst effects) and the GPU baseline
model — and returns an :class:`ExperimentResult` holding both a printable
table and the raw records for the report generator and the tests.

Runtimes at paper scale are obtained through cycle accounting (estimate
paths), exactly as the paper's own predictions are; functional correctness
of the same architecture is validated separately on scaled-down meshes by
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Sequence

from repro.apps.jacobi3d import jacobi3d_app
from repro.apps.poisson2d import poisson2d_app
from repro.apps.rtm import rtm_app
from repro.arch.device import ALVEO_U280
from repro.harness import paper_data as paper
from repro.model.design import Workload
from repro.model.resources import gdsp_program, p_dsp
from repro.model.tiling import tile_throughput, valid_ratio
from repro.util.tables import TextTable
from repro.util.units import GB


@dataclass
class ExperimentResult:
    """Outcome of one reproduced artifact."""

    experiment_id: str
    title: str
    table: TextTable
    records: list[dict] = dc_field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        """The printable result."""
        text = self.table.render()
        if self.notes:
            text += f"\n\nNotes: {self.notes}"
        return text


def _mesh_str(mesh: Sequence[int]) -> str:
    return "x".join(str(v) for v in mesh)


def _bw_gbs(bytes_per_s: float) -> float:
    return bytes_per_s / GB


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
def run_table2() -> ExperimentResult:
    """Reproduce Table II: frequency, G_dsp and p_dsp per application."""
    apps = {
        "Poisson-5pt-2D": poisson2d_app(),
        "Jacobi-7pt-3D": jacobi3d_app(),
        "RTM-forward": rtm_app(),
    }
    table = TextTable(
        ["app", "freq MHz (paper)", "Gdsp ours", "Gdsp paper",
         "pdsp ours (eq.6)", "pdsp paper model", "p synthesized (paper)"],
        title="Table II: baseline and batching, model parameters",
    )
    result = ExperimentResult("table2", "Table II - model parameters", table)
    for row in paper.TABLE2:
        app = apps[row.app]
        gdsp = gdsp_program(app.program)
        ours_pdsp = p_dsp(ALVEO_U280, app.V, gdsp)
        table.add_row(
            [row.app, row.freq_mhz, gdsp, row.gdsp, ours_pdsp, row.pdsp_model, row.pdsp_actual]
        )
        result.records.append(
            {
                "app": row.app,
                "gdsp_ours": gdsp,
                "gdsp_paper": row.gdsp,
                "pdsp_ours": ours_pdsp,
                "pdsp_paper": row.pdsp_model,
            }
        )
    return result


# --------------------------------------------------------------------------- #
# Table III
# --------------------------------------------------------------------------- #
def run_table3() -> ExperimentResult:
    """Reproduce Table III: spatial-blocking throughput parameters."""
    table = TextTable(
        ["app", "p", "V", "M", "N", "T ours", "T paper", "valid ours", "valid paper"],
        title="Table III: spatial blocking model parameters",
    )
    result = ExperimentResult("table3", "Table III - spatial blocking parameters", table)
    for row in paper.TABLE3:
        if row.N is None:
            # 2D: M x n blocks with a very tall n (asymptotic in eq. 14)
            t = tile_throughput(row.M, None, 10**6, row.V, row.p, 2)
            ratio = valid_ratio(row.M, None, row.p, 2)
        else:
            t = tile_throughput(row.M, row.N, 10**9, row.V, row.p, 2)
            ratio = valid_ratio(row.M, row.N, row.p, 2)
        table.add_row(
            [row.app, row.p, row.V, row.M, row.N or "-", t, row.throughput, ratio, row.valid_ratio]
        )
        result.records.append(
            {
                "app": row.app,
                "throughput_ours": t,
                "throughput_paper": row.throughput,
                "valid_ours": ratio,
                "valid_paper": row.valid_ratio,
            }
        )
    return result


# --------------------------------------------------------------------------- #
# Baseline runtime figures (3a / 4a / 5a)
# --------------------------------------------------------------------------- #
def _run_baseline_figure(
    experiment_id: str,
    title: str,
    app_factory,
    rows,
    niter: int,
) -> ExperimentResult:
    table = TextTable(
        ["mesh", "FPGA pred (s)", "FPGA sim (s)", "FPGA paper (s)",
         "GPU model (s)", "GPU paper (s)"],
        title=title,
    )
    result = ExperimentResult(experiment_id, title, table)
    for row in rows:
        app = app_factory(row.mesh)
        workload = app.workload(row.mesh, niter)
        pred = app.predictor(row.mesh).predict(workload)
        sim = app.accelerator(row.mesh).estimate(workload)
        gpu = app.gpu_model().predict(workload)
        table.add_row(
            [_mesh_str(row.mesh), pred.seconds, sim.seconds, row.fpga_s,
             gpu.seconds, row.gpu_s]
        )
        result.records.append(
            {
                "mesh": row.mesh,
                "fpga_pred": pred.seconds,
                "fpga_sim": sim.seconds,
                "fpga_paper": row.fpga_s,
                "gpu_model": gpu.seconds,
                "gpu_paper": row.gpu_s,
            }
        )
    return result


def run_fig3a() -> ExperimentResult:
    """Fig 3(a): Poisson baseline runtimes, 60000 iterations."""
    return _run_baseline_figure(
        "fig3a",
        "Fig 3(a): Poisson-5pt-2D baseline - 60000 iterations",
        lambda mesh: poisson2d_app(mesh),
        paper.FIG3A,
        paper.POISSON_BASE_ITERS,
    )


def run_fig4a() -> ExperimentResult:
    """Fig 4(a): Jacobi baseline runtimes, 29000 iterations."""
    return _run_baseline_figure(
        "fig4a",
        "Fig 4(a): Jacobi-7pt-3D baseline - 29000 iterations",
        lambda mesh: jacobi3d_app(mesh),
        paper.FIG4A,
        paper.JACOBI_BASE_ITERS,
    )


def run_fig5a() -> ExperimentResult:
    """Fig 5(a): RTM baseline runtimes, 1800 iterations."""
    return _run_baseline_figure(
        "fig5a",
        "Fig 5(a): RTM forward pass baseline - 1800 iterations",
        lambda mesh: rtm_app(mesh),
        paper.FIG5A,
        paper.RTM_BASE_ITERS,
    )


# --------------------------------------------------------------------------- #
# Batched runtime figures (3b / 4b / 5b)
# --------------------------------------------------------------------------- #
def _run_batched_figure(
    experiment_id: str,
    title: str,
    app_factory,
    bw_rows,
    niter: int,
    batch_small: int,
    batch_large: int,
    logical_bytes_per_cell_iter: float,
) -> ExperimentResult:
    table = TextTable(
        ["mesh", "batch", "FPGA sim (s)", "FPGA paper* (s)",
         "GPU model (s)", "GPU paper* (s)"],
        title=title,
    )
    result = ExperimentResult(
        experiment_id,
        title,
        table,
        notes="* paper runtimes derived from the bandwidth tables via "
        "runtime = logical_bytes / bandwidth (figures are not labelled).",
    )
    for row in bw_rows:
        for batch, fpga_bw, gpu_bw in (
            (batch_small, row.fpga_batch_small, row.gpu_batch_small),
            (batch_large, row.fpga_batch_large, row.gpu_batch_large),
        ):
            if fpga_bw is None:
                continue
            app = app_factory(row.mesh)
            workload = app.workload(row.mesh, niter, batch)
            sim = app.accelerator(row.mesh).estimate(workload)
            gpu = app.gpu_model().predict(workload)
            cells = workload.total_points
            logical = logical_bytes_per_cell_iter * cells * niter
            fpga_paper_s = logical / (fpga_bw * GB)
            gpu_paper_s = logical / (gpu_bw * GB) if gpu_bw else None
            table.add_row(
                [_mesh_str(row.mesh), batch, sim.seconds, fpga_paper_s,
                 gpu.seconds, gpu_paper_s if gpu_paper_s is not None else "-"]
            )
            result.records.append(
                {
                    "mesh": row.mesh,
                    "batch": batch,
                    "fpga_sim": sim.seconds,
                    "fpga_paper": fpga_paper_s,
                    "gpu_model": gpu.seconds,
                    "gpu_paper": gpu_paper_s,
                }
            )
    return result


def run_fig3b() -> ExperimentResult:
    """Fig 3(b): Poisson batched runtimes (100B / 1000B), 60000 iterations."""
    return _run_batched_figure(
        "fig3b",
        "Fig 3(b): Poisson-5pt-2D batching - 60000 iterations",
        lambda mesh: poisson2d_app(mesh),
        paper.TABLE4_BASELINE,
        paper.POISSON_BASE_ITERS,
        paper.POISSON_BATCH_SMALL,
        paper.POISSON_BATCH_LARGE,
        8.0,
    )


def run_fig4b() -> ExperimentResult:
    """Fig 4(b): Jacobi batched runtimes (10B / 50B), 2900 iterations."""
    return _run_batched_figure(
        "fig4b",
        "Fig 4(b): Jacobi-7pt-3D batching - 2900 iterations",
        lambda mesh: jacobi3d_app(mesh),
        paper.TABLE5_BASELINE,
        paper.JACOBI_BATCH_ITERS,
        paper.JACOBI_BATCH_SMALL,
        paper.JACOBI_BATCH_LARGE,
        8.0,
    )


def run_fig5b() -> ExperimentResult:
    """Fig 5(b): RTM batched runtimes (20B / 40B), 180 iterations."""
    return _run_batched_figure(
        "fig5b",
        "Fig 5(b): RTM forward pass batching - 180 iterations",
        lambda mesh: rtm_app(mesh),
        paper.TABLE6,
        paper.RTM_BATCH_ITERS,
        paper.RTM_BATCH_SMALL,
        paper.RTM_BATCH_LARGE,
        440.0,
    )


# --------------------------------------------------------------------------- #
# Tiled runtime figures (3c / 4c)
# --------------------------------------------------------------------------- #
def _run_tiled_figure(
    experiment_id: str,
    title: str,
    app_factory,
    meshes,
    tile_sweep,
    tiled_rows,
    niter: int,
    square_tiles: bool,
    logical_bytes_per_cell_iter: float,
) -> ExperimentResult:
    table = TextTable(
        ["mesh", "tile", "FPGA pred (s)", "FPGA sim (s)", "FPGA paper* (s)",
         "GPU model (s)", "GPU paper* (s)"],
        title=title,
    )
    result = ExperimentResult(
        experiment_id,
        title,
        table,
        notes="* paper runtimes derived from the spatial-blocking bandwidth tables.",
    )
    paper_bw = {(r.mesh, r.tile): r for r in tiled_rows}
    for mesh in meshes:
        app = app_factory()
        workload = app.workload(mesh, niter)
        gpu = app.gpu_model().predict(workload)
        logical = logical_bytes_per_cell_iter * workload.total_points * niter
        for tile_edge in tile_sweep:
            tile = (tile_edge, tile_edge) if square_tiles else (tile_edge,)
            design = app.design(tile=tile)
            pred = app.predictor(mesh, design).predict(workload)
            sim = app.accelerator(mesh, design).estimate(workload)
            row = paper_bw.get((mesh, tile_edge))
            fpga_paper_s = logical / (row.fpga_bw * GB) if row else None
            gpu_paper_s = logical / (row.gpu_bw * GB) if row and row.gpu_bw else None
            table.add_row(
                [
                    _mesh_str(mesh),
                    tile_edge,
                    pred.seconds,
                    sim.seconds,
                    fpga_paper_s if fpga_paper_s is not None else "-",
                    gpu.seconds,
                    gpu_paper_s if gpu_paper_s is not None else "-",
                ]
            )
            result.records.append(
                {
                    "mesh": mesh,
                    "tile": tile_edge,
                    "fpga_pred": pred.seconds,
                    "fpga_sim": sim.seconds,
                    "fpga_paper": fpga_paper_s,
                    "gpu_model": gpu.seconds,
                    "gpu_paper": gpu_paper_s,
                }
            )
    return result


def run_fig3c() -> ExperimentResult:
    """Fig 3(c): Poisson spatial blocking, 6000 iterations."""
    return _run_tiled_figure(
        "fig3c",
        "Fig 3(c): Poisson-5pt-2D spatial blocking - 6000 iterations",
        poisson2d_app,
        ((15000, 15000), (20000, 20000)),
        paper.POISSON_TILE_SWEEP,
        paper.TABLE4_TILED,
        paper.POISSON_TILED_ITERS,
        square_tiles=False,
        logical_bytes_per_cell_iter=8.0,
    )


def run_fig4c() -> ExperimentResult:
    """Fig 4(c): Jacobi spatial blocking, 120 iterations."""
    return _run_tiled_figure(
        "fig4c",
        "Fig 4(c): Jacobi-7pt-3D spatial blocking - 120 iterations",
        jacobi3d_app,
        ((600, 600, 600), (1800, 1800, 100)),
        paper.JACOBI_TILE_SWEEP,
        paper.TABLE5_TILED,
        paper.JACOBI_TILED_ITERS,
        square_tiles=True,
        logical_bytes_per_cell_iter=8.0,
    )


# --------------------------------------------------------------------------- #
# Bandwidth & energy tables (IV / V / VI)
# --------------------------------------------------------------------------- #
def _run_bw_energy_table(
    experiment_id: str,
    title: str,
    app_factory,
    bw_rows,
    base_iters: int,
    batch_iters: int,
    batch_large: int,
) -> ExperimentResult:
    table = TextTable(
        ["mesh", "FPGA BW ours", "FPGA BW paper", "GPU BW ours", "GPU BW paper",
         "FPGA kJ ours", "FPGA kJ paper", "GPU kJ ours", "GPU kJ paper"],
        title=title,
    )
    result = ExperimentResult(
        experiment_id,
        title,
        table,
        notes="BW in GB/s (paper's logical-traffic convention, baseline runs); "
        f"energy in kJ at the large batch ({batch_large}B).",
    )
    for row in bw_rows:
        app = app_factory(row.mesh)
        base_w = app.workload(row.mesh, base_iters)
        sim = app.accelerator(row.mesh).estimate(base_w)
        gpu = app.gpu_model().predict(base_w)
        if row.fpga_energy_kj is not None:
            batch_w = app.workload(row.mesh, batch_iters, batch_large)
            sim_b = app.accelerator(row.mesh).estimate(batch_w)
            gpu_b = app.gpu_model().predict(batch_w)
            fpga_kj, gpu_kj = sim_b.energy_j / 1e3, gpu_b.energy_j / 1e3
        else:
            fpga_kj = gpu_kj = None
        table.add_row(
            [
                _mesh_str(row.mesh),
                _bw_gbs(sim.logical_bandwidth),
                row.fpga_base,
                _bw_gbs(gpu.logical_bandwidth),
                row.gpu_base,
                fpga_kj if fpga_kj is not None else "-",
                row.fpga_energy_kj if row.fpga_energy_kj is not None else "-",
                gpu_kj if gpu_kj is not None else "-",
                row.gpu_energy_kj if row.gpu_energy_kj is not None else "-",
            ]
        )
        result.records.append(
            {
                "mesh": row.mesh,
                "fpga_bw_ours": _bw_gbs(sim.logical_bandwidth),
                "fpga_bw_paper": row.fpga_base,
                "gpu_bw_ours": _bw_gbs(gpu.logical_bandwidth),
                "gpu_bw_paper": row.gpu_base,
                "fpga_kj_ours": fpga_kj,
                "fpga_kj_paper": row.fpga_energy_kj,
                "gpu_kj_ours": gpu_kj,
                "gpu_kj_paper": row.gpu_energy_kj,
            }
        )
    return result


def run_table4() -> ExperimentResult:
    """Table IV: Poisson bandwidth and energy."""
    return _run_bw_energy_table(
        "table4",
        "Table IV: Poisson-5pt-2D bandwidth (GB/s) and energy (kJ)",
        lambda mesh: poisson2d_app(mesh),
        paper.TABLE4_BASELINE,
        paper.POISSON_BASE_ITERS,
        paper.POISSON_BASE_ITERS,
        paper.POISSON_BATCH_LARGE,
    )


def run_table5() -> ExperimentResult:
    """Table V: Jacobi bandwidth and energy."""
    return _run_bw_energy_table(
        "table5",
        "Table V: Jacobi-7pt-3D bandwidth (GB/s) and energy (kJ)",
        lambda mesh: jacobi3d_app(mesh),
        paper.TABLE5_BASELINE,
        paper.JACOBI_BASE_ITERS,
        paper.JACOBI_BATCH_ITERS,
        paper.JACOBI_BATCH_LARGE,
    )


def run_table6() -> ExperimentResult:
    """Table VI: RTM bandwidth and energy."""
    return _run_bw_energy_table(
        "table6",
        "Table VI: RTM avg. bandwidth (GB/s) and energy (kJ)",
        lambda mesh: rtm_app(mesh),
        paper.TABLE6,
        paper.RTM_BASE_ITERS,
        paper.RTM_BATCH_ITERS,
        paper.RTM_BATCH_LARGE,
    )


# --------------------------------------------------------------------------- #
# DSE experiments (extension: the model as an optimizer, Section V-A)
# --------------------------------------------------------------------------- #
#: (app factory, mesh, niter) per application — modest workloads keep the
#: exhaustive reference sweep fast while preserving the design-space shape
_DSE_WORKLOADS = (
    ("poisson2d", lambda: poisson2d_app(), (1000, 1000), 500),
    ("jacobi3d", lambda: jacobi3d_app(), (100, 100, 100), 100),
    ("rtm", lambda: rtm_app(), (100, 100, 100), 90),
)

#: new-evaluation budget granted to each non-exhaustive strategy
_DSE_BUDGET = 40


def _dse_study(app, mesh, niter, strategy_name, trials, boards=(1,)):
    from repro.dse import Evaluator, Study, model_space, strategy_by_name

    program = app.program_on(mesh)
    workload = Workload(program.mesh, niter)
    space = model_space(program, ALVEO_U280, workload, boards=boards)
    evaluator = Evaluator(
        program,
        ALVEO_U280,
        workload,
        logical_bytes_per_cell_iter=app.gpu_traffic.logical_bytes_per_cell_iter,
    )
    study = Study(space, evaluator)
    study.run(strategy_by_name(strategy_name, seed=0), trials)
    return study


def run_dse_convergence() -> ExperimentResult:
    """Strategy convergence to the exhaustive optimum, per application.

    For each paper application the full grid provides the reference
    optimum; every other strategy then gets a fixed budget of new
    evaluations.  The gap column is the paper-facing claim: the analytic
    model narrows the design space well enough that a few dozen trials
    recover (near-)optimal designs that synthesis sweeps take days to find.
    """
    table = TextTable(
        ["app", "strategy", "trials", "best runtime (s)", "optimum (s)",
         "gap %", "paper design gap %"],
        title="DSE: strategy convergence to the exhaustive optimum (U280)",
    )
    result = ExperimentResult(
        "dse-convergence", "DSE - strategy convergence", table,
        notes=(
            f"budget: {_DSE_BUDGET} new evaluations per strategy (seed 0); "
            "'paper design gap' compares the predicted runtime of the paper's "
            "validated (V, p) design point against the grid optimum on the "
            "same workload"
        ),
    )
    for key, make_app, mesh, niter in _DSE_WORKLOADS:
        app = make_app()
        reference = _dse_study(app, mesh, niter, "exhaustive", None)
        optimum = reference.best()
        if optimum is None:
            table.add_row([key, "exhaustive", reference.evaluated,
                           None, None, None, None])
            result.records.append({"app": key, "strategy": "exhaustive",
                                   "trials": reference.evaluated,
                                   "best_runtime": None, "optimum_runtime": None,
                                   "gap_pct": None})
            continue
        paper_gap = _paper_design_gap(app, mesh, niter, optimum)
        for strategy in ("exhaustive", "random", "annealing", "greedy"):
            if strategy == "exhaustive":
                study, best = reference, optimum
            else:
                study = _dse_study(app, mesh, niter, strategy, _DSE_BUDGET)
                best = study.best()
            gap = (
                (best.value("runtime") / optimum.value("runtime") - 1.0) * 100
                if best is not None
                else float("inf")
            )
            table.add_row(
                [
                    key,
                    strategy,
                    study.evaluated,
                    best.value("runtime") if best else None,
                    optimum.value("runtime"),
                    gap,
                    paper_gap,
                ]
            )
            result.records.append(
                {
                    "app": key,
                    "strategy": strategy,
                    "trials": study.evaluated,
                    "best_runtime": best.value("runtime") if best else None,
                    "optimum_runtime": optimum.value("runtime"),
                    "gap_pct": gap,
                }
            )
    return result


def _paper_design_gap(app, mesh, niter, optimum) -> float | None:
    """Predicted-runtime gap of the paper's validated design vs the optimum."""
    from repro.util.errors import ReproError

    try:
        predictor = app.predictor(mesh)
        workload = app.workload(mesh, niter)
        seconds = predictor.predict(workload).seconds
    except ReproError:
        return None
    return (seconds / optimum.value("runtime") - 1.0) * 100


def run_dse_multifpga() -> ExperimentResult:
    """Best designs along the multi-FPGA spatial-scaling axis.

    Adds the board count to the design space (halo exchange over QSFP28
    links, see :mod:`repro.model.multifpga`) and reports the best design
    and parallel efficiency the model predicts at each cluster size.
    """
    from repro.model.multifpga import scaling_efficiency

    table = TextTable(
        ["app", "boards", "V", "p", "memory", "runtime (s)", "speedup", "efficiency"],
        title="DSE: multi-FPGA spatial scaling (U280 x QSFP28)",
    )
    result = ExperimentResult(
        "dse-multifpga", "DSE - multi-FPGA scaling", table,
        notes=(
            "board count explored as a design-space axis; efficiency is "
            "t1 / (n * tn) from the spatial-scaling halo-exchange model"
        ),
    )
    boards_axis = (1, 2, 4, 8)
    for key, make_app, mesh, niter in _DSE_WORKLOADS[:2]:  # poisson + jacobi
        app = make_app()
        study = _dse_study(app, mesh, niter, "greedy", None, boards=boards_axis)
        program = app.program_on(mesh)
        workload = Workload(program.mesh, niter)
        base = None
        for boards in boards_axis:
            best = min(
                (t for t in study.feasible_trials() if t.config.get("boards") == boards),
                key=lambda t: t.score,
                default=None,
            )
            if best is None:
                continue
            seconds = best.value("runtime")
            if boards == 1:
                base = seconds
            design = best.result.design
            efficiency = scaling_efficiency(
                program, design, workload, boards, strategy="spatial"
            )
            table.add_row(
                [
                    key,
                    boards,
                    design.V,
                    design.p,
                    design.memory,
                    seconds,
                    base / seconds if base else None,
                    efficiency,
                ]
            )
            result.records.append(
                {
                    "app": key,
                    "boards": boards,
                    "runtime": seconds,
                    "efficiency": efficiency,
                }
            )
    return result


# --------------------------------------------------------------------------- #
# workload-mix throughput
# --------------------------------------------------------------------------- #
#: the mix the experiment schedules: small functional meshes spanning all
#: three applications with differing shapes and iteration counts — the
#: heterogeneous population the paper's batched mode (Section IV-B) serves
_MIX_SPEC = "poisson2d:24x16:20x6,jacobi3d:16x14x10:12x4,rtm:12x12x10:6x3"


def run_mix_throughput() -> ExperimentResult:
    """Workload-mix scheduling: chunked stacked dispatch vs per-mesh replay.

    Schedules a heterogeneous mix (three apps, differing mesh shapes and
    iteration counts) through :class:`~repro.dataflow.scheduler.MixScheduler`:
    members group by job shape and each group executes through the compiled
    engine in footprint-bounded stacked chunks, sized by the *calibrated*
    per-host byte budget (:func:`repro.parallel.calibrate.calibrated_bytes_limit`)
    rather than the static default. Both budgets' schedules are recorded —
    the per-mesh dispatch count is the structural baseline (one tape replay
    per mesh, derived, not executed) — and every mesh is validated
    bit-identical against the golden interpreter. The estimate column prices
    each group at paper scale with the app's validated design (kernel
    seconds from the batched cycle model).
    """
    from repro.apps.registry import app_by_name
    from repro.dataflow.scheduler import MixScheduler
    from repro.parallel.calibrate import calibrated_bytes_limit
    from repro.stencil.compiled import STACKED_BYTES_LIMIT
    from repro.workload import WorkloadMix

    mix = WorkloadMix.parse(_MIX_SPEC)
    calibrated = calibrated_bytes_limit()
    chunked = MixScheduler(stacked_bytes_limit=calibrated).run(mix, validate=True)
    default_run = MixScheduler().run(mix)

    table = TextTable(
        ["group", "meshes", "chunks", "dispatches", "default disp.",
         "per-mesh", "est. kernel s"],
        title="Workload mix: chunked stacked scheduling (validated vs interpreter)",
    )
    result = ExperimentResult(
        "mix-throughput", "Workload mix - chunked stacked scheduling", table,
        notes=(
            f"mix: {mix.describe()}; chunks sized by the calibrated budget "
            f"({calibrated} bytes; static default {STACKED_BYTES_LIMIT}); "
            "'per-mesh' is the one-dispatch-per-mesh baseline; all "
            f"{chunked.meshes} meshes bit-identical to the golden interpreter"
        ),
    )
    for group, default_group in zip(chunked.groups, default_run.groups):
        spec = group.spec
        app = app_by_name(spec.app)
        estimate = app.accelerator(spec.mesh.shape).estimate(spec)
        table.add_row(
            [
                spec.describe(),
                group.meshes,
                "+".join(str(c) for c in group.chunks),
                group.dispatches,
                default_group.dispatches,
                group.meshes,
                estimate.kernel_seconds,
            ]
        )
        result.records.append(
            {
                "group": spec.describe(),
                "meshes": group.meshes,
                "chunks": list(group.chunks),
                "dispatches": group.dispatches,
                "default_dispatches": default_group.dispatches,
                "per_mesh_dispatches": group.meshes,
                "stacked_bytes_limit": calibrated,
                "kernel_seconds": estimate.kernel_seconds,
            }
        )
    table.add_row(
        ["total", chunked.meshes, "-", chunked.dispatches,
         default_run.dispatches, chunked.meshes, None]
    )
    result.records.append(
        {
            "group": "total",
            "meshes": chunked.meshes,
            "dispatches": chunked.dispatches,
            "default_dispatches": default_run.dispatches,
            "per_mesh_dispatches": chunked.meshes,
            "stacked_bytes_limit": calibrated,
        }
    )
    return result
