"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The :class:`MetricsRegistry` is the numeric half of the observability
layer (:mod:`repro.observability`): execution paths increment counters
("how many stacked dispatches"), set gauges ("current pool width") and
observe histograms ("chunk wall-clock seconds") against one shared
registry, which :mod:`repro.observability.export` can render as a
Prometheus-style text dump.

Design constraints, in order:

1. **Cheap when off.** The hot paths guard every call behind the facade's
   single ``is_enabled()`` flag check, so the disabled default adds one
   attribute read per *call site*, never per tape op — the zero-alloc
   steady loop (:meth:`repro.stencil.compiled.CompiledProgram.run_iterations`)
   is not instrumented at all.
2. **Cheap when on.** Instruments are resolved once per ``(name, labels)``
   and then mutate plain Python numbers; a histogram observation is one
   bisect plus a handful of attribute updates under a lock shared with no
   other instrument.
3. **Fixed buckets.** Histograms never store raw samples: percentile
   summaries (p50/p95/p99) are estimated from the bucket counts by linear
   interpolation, so memory stays constant however many chunks a mix
   dispatches. Exact percentiles over *small* sample lists (per-group
   chunk latencies) use :func:`percentiles` instead.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterator, Mapping, Sequence

from repro.util.errors import ValidationError

#: default histogram bucket upper bounds, in seconds: an exponential
#: latency ladder from 10 us to 10 s (an implicit +inf bucket catches the
#: rest). Wide enough for everything from a thread-chunk dispatch to a
#: whole mix run.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

#: labels are carried as a canonical sorted tuple of (key, value) pairs
LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50, 95, 99)
) -> dict[str, float]:
    """Exact percentiles of a small sample, by linear interpolation.

    Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (NaN for an empty
    sample). This is the companion to :meth:`Histogram.percentile` for
    call sites that *do* hold the raw samples — e.g. a job group's
    per-chunk latencies, a few dozen floats at most.
    """
    out: dict[str, float] = {}
    data = sorted(values)
    for q in qs:
        key = f"p{q:g}"
        if not data:
            out[key] = math.nan
            continue
        rank = (q / 100.0) * (len(data) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        out[key] = data[lo] + (data[hi] - data[lo]) * frac
    return out


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (pool width, cache residency)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with estimated percentile summaries.

    ``bounds`` are the inclusive upper bounds of the finite buckets; an
    implicit +inf bucket catches overflow. Observations update the bucket
    counts plus running count/sum/min/max — no samples are retained, so
    the footprint is constant and the percentile summaries are estimates
    (linear interpolation inside the winning bucket, clamped to the
    observed min/max so a single-sample histogram reports that sample).
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max", "_lock")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(
            b2 <= b1 for b1, b2 in zip(ordered, ordered[1:])
        ):
            raise ValidationError(
                f"histogram bounds must be strictly increasing, got {bounds}"
            )
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (NaN when empty).

        Walks the cumulative bucket counts to the bucket containing the
        target rank, then interpolates linearly between the bucket's
        bounds; the extreme buckets use the observed min/max as their
        missing edge so estimates never leave the observed range.
        """
        if not 0 <= q <= 100:
            raise ValidationError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self.count == 0:
                return math.nan
            target = (q / 100.0) * self.count
            cum = 0
            for idx, bucket_count in enumerate(self.counts):
                cum += bucket_count
                if cum >= target and bucket_count:
                    lo = self.bounds[idx - 1] if idx > 0 else self.min
                    hi = self.bounds[idx] if idx < len(self.bounds) else self.max
                    lo = max(lo, self.min)
                    hi = min(hi, self.max)
                    frac = (target - (cum - bucket_count)) / bucket_count
                    return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            return self.max

    def summary(self) -> dict[str, float]:
        """The standard latency summary: count, mean, p50/p95/p99, max."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max if self.count else math.nan,
        }


class MetricsRegistry:
    """Process-local registry of named, labelled instruments.

    Instruments are created on first use and shared thereafter; a name
    must keep one instrument kind (asking for a counter named like an
    existing histogram is a programming error and raises). Thread-safe:
    creation is serialized, mutation relies on each instrument's own
    discipline (counters/gauges are single attribute updates, histograms
    lock internally).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], object] = {}
        self._kinds: dict[str, type] = {}
        self._lock = threading.Lock()

    def _get(self, kind: type, name: str, labels: Mapping[str, object], **kwargs):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, kind):
                raise ValidationError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                registered = self._kinds.setdefault(name, kind)
                if registered is not kind:
                    raise ValidationError(
                        f"metric {name!r} is a {registered.__name__}, "
                        f"not a {kind.__name__}"
                    )
                metric = self._metrics[key] = kind(**kwargs)
        if not isinstance(metric, kind):
            raise ValidationError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        **labels: object,
    ) -> Histogram:
        kwargs = {"bounds": tuple(buckets)} if buckets is not None else {}
        return self._get(Histogram, name, labels, **kwargs)

    def items(self) -> Iterator[tuple[str, LabelItems, object]]:
        """Snapshot of ``(name, labels, instrument)``, sorted by name."""
        with self._lock:
            snapshot = list(self._metrics.items())
        for (name, labels), metric in sorted(
            snapshot, key=lambda kv: kv[0]
        ):
            yield name, labels, metric

    def value(self, name: str, **labels: object) -> float:
        """One counter/gauge value (NaN if the instrument does not exist)."""
        metric = self._metrics.get((name, _label_items(labels)))
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        return math.nan

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
