"""Structured, schema-versioned event log with pluggable sinks.

Every notable execution-stack occurrence — a plan compile, a cache
hit/miss burst, a chunk dispatch, a worker failure, a calibration probe,
a measured-vs-modeled residual — is one **event**: a flat JSON-friendly
dict stamped with a schema version, a monotonically increasing sequence
number and a wall-clock timestamp. Events flow through an
:class:`EventLog` to its sinks:

* :class:`RingSink` — a bounded in-memory deque; the test suite's (and
  ``repro metrics``'s) way to inspect what happened without touching disk.
* :class:`FileSink` — append-only JSONL, one event per line; what
  ``repro mix --trace FILE`` and the CI bench-smoke artifact use.

The facade (:mod:`repro.observability`) mirrors finished trace spans into
the log as ``kind="span"`` events, so a single JSONL file carries both
the discrete events and the whole span tree of a run.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterator

#: bump when the event record shape changes incompatibly; consumers should
#: skip records with a newer major version than they know
SCHEMA_VERSION = 1


class RingSink:
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)

    def write(self, record: dict[str, Any]) -> None:
        self._ring.append(record)

    @property
    def records(self) -> list[dict[str, Any]]:
        return list(self._ring)

    def kinds(self) -> list[str]:
        """The event kinds seen, in order (convenience for assertions)."""
        return [r["kind"] for r in self._ring]

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        return [r for r in self._ring if r["kind"] == kind]

    def clear(self) -> None:
        self._ring.clear()

    def close(self) -> None:  # sink protocol
        pass


class FileSink:
    """Appends events to a JSONL file, one line per event.

    The file opens lazily on the first event and flushes per write —
    event rates are per-chunk/per-trial, not per-op, so durability wins
    over batching. Write failures disable the sink (observability must
    never take the run down with it).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: io.TextIOBase | None = None
        self._dead = False

    def write(self, record: dict[str, Any]) -> None:
        if self._dead:
            return
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a", encoding="utf-8")
            self._fh.write(json.dumps(record, default=str) + "\n")
            self._fh.flush()
        except OSError:
            self._dead = True

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


def read_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Parse a JSONL event file back into records (skipping corrupt lines)."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


class EventLog:
    """Fans structured events out to its sinks; thread-safe."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks: list[Any] = list(sinks)
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, kind: str, **payload: Any) -> dict[str, Any]:
        """Stamp and dispatch one event; returns the record."""
        with self._lock:
            self._seq += 1
            record = {
                "v": SCHEMA_VERSION,
                "seq": self._seq,
                "ts": time.time(),
                "kind": kind,
                **payload,
            }
            for sink in self.sinks:
                sink.write(record)
        return record

    def add_sink(self, sink: Any) -> None:
        with self._lock:
            self.sinks.append(sink)

    def close(self) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.close()
