"""Render observability state for humans and scrapers.

Two renderers:

* :func:`render_prometheus` — a Prometheus-style text dump of a
  :class:`~repro.observability.metrics.MetricsRegistry`: counters and
  gauges as single samples, histograms as ``_bucket``/``_sum``/``_count``
  series plus p50/p95/p99 summary gauges (estimated from the buckets).
* :func:`render_trace_table` — the span forest of a
  :class:`~repro.observability.tracing.Tracer` as an indented
  human-readable table with per-span durations and attributes.
"""

from __future__ import annotations

import math
from typing import Any

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import Tracer

#: metric-name prefix in the Prometheus dump
_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    out = [
        ch if ch.isalnum() or ch == "_" else "_"
        for ch in name
    ]
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return _PREFIX + text


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.9g}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus exposition-format text."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for name, labels, metric in registry.items():
        pname = _prom_name(name)
        if isinstance(metric, Counter):
            if pname not in seen_types:
                lines.append(f"# TYPE {pname} counter")
                seen_types.add(pname)
            lines.append(f"{pname}{_prom_labels(labels)} {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            if pname not in seen_types:
                lines.append(f"# TYPE {pname} gauge")
                seen_types.add(pname)
            lines.append(f"{pname}{_prom_labels(labels)} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            if pname not in seen_types:
                lines.append(f"# TYPE {pname} histogram")
                seen_types.add(pname)
            cum = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cum += count
                le = 'le="%s"' % _fmt(bound)
                lines.append(
                    f"{pname}_bucket{_prom_labels(labels, le)} {cum}"
                )
            le_inf = 'le="+Inf"'
            lines.append(
                f"{pname}_bucket{_prom_labels(labels, le_inf)} {metric.count}"
            )
            lines.append(f"{pname}_sum{_prom_labels(labels)} {_fmt(metric.total)}")
            lines.append(f"{pname}_count{_prom_labels(labels)} {metric.count}")
            for q in (50, 95, 99):
                lines.append(
                    f"{pname}_p{q}{_prom_labels(labels)} "
                    f"{_fmt(metric.percentile(q))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _span_attrs(attrs: dict[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in attrs.items())


def render_trace_table(tracer: Tracer, unit: str = "ms") -> str:
    """The tracer's span forest as an indented duration table."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    rows: list[tuple[str, str, str]] = []

    def walk(node: tuple, depth: int) -> None:
        record, children = node
        rows.append(
            (
                "  " * depth + record.name,
                f"{record.duration * scale:.3f}",
                _span_attrs(record.attrs),
            )
        )
        for child in children:
            walk(child, depth + 1)

    for root in tracer.tree():
        walk(root, 0)
    if not rows:
        return "(no spans recorded)\n"
    name_w = max(len(r[0]) for r in rows + [("span", "", "")])
    dur_w = max(len(r[1]) for r in rows + [("", unit, "")])
    out = [f"{'span':<{name_w}}  {unit:>{dur_w}}  attrs"]
    for name, dur, attrs in rows:
        out.append(f"{name:<{name_w}}  {dur:>{dur_w}}  {attrs}".rstrip())
    return "\n".join(out) + "\n"
