"""``repro.observability`` — metrics, trace spans and structured events.

One switch, three instruments:

* **Metrics** (:mod:`~repro.observability.metrics`) — process-local
  counters, gauges and fixed-bucket histograms with p50/p95/p99
  summaries, rendered by :func:`repro.observability.export.render_prometheus`.
* **Tracing** (:mod:`~repro.observability.tracing`) — nested timed spans
  forming a tree; a :class:`~repro.observability.tracing.TraceContext`
  serializes across the process-pool boundary so worker-side chunk spans
  reattach under the parent's dispatch span.
* **Events** (:mod:`~repro.observability.events`) — a schema-versioned
  JSONL event log (plan compiles, cache misses, chunk dispatches, worker
  failures, residuals) with ring-buffer and file sinks; finished spans
  are mirrored into it as ``kind="span"`` records.

Everything is **off by default**: the instrumented hot paths guard each
call site behind :func:`is_enabled` — a single module attribute read —
and the zero-alloc steady loop is never instrumented at all, so disabled
overhead is unmeasurable (asserted by
``benchmarks/bench_observability_overhead.py``). Enable with::

    from repro import observability

    observability.enable(trace_path="run-trace.jsonl")   # file optional
    ...  # run mixes / DSE / parallel batches
    print(observability.render_metrics())
    observability.disable()

or from the CLI: ``repro mix ... --trace FILE``, ``repro dse ... --trace
FILE``, and ``repro metrics MIX`` (run + dump in one shot).
"""

from __future__ import annotations

from typing import Any, ContextManager, Mapping, Sequence
from contextlib import nullcontext

from repro.observability.events import (
    SCHEMA_VERSION,
    EventLog,
    FileSink,
    RingSink,
    read_events,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentiles,
)
from repro.observability.tracing import SpanRecord, TraceContext, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "Counter",
    "EventLog",
    "FileSink",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RingSink",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "disable",
    "emit",
    "enable",
    "event_log",
    "inc",
    "is_enabled",
    "metrics_registry",
    "observe",
    "percentiles",
    "read_events",
    "render_metrics",
    "render_trace",
    "set_gauge",
    "span",
    "trace_context",
    "tracer",
]


class _State:
    """The process-wide observability switchboard."""

    __slots__ = ("enabled", "registry", "tracer", "events", "_file_sink")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.events = EventLog(RingSink())
        self.tracer = Tracer(on_finish=self._span_finished)
        self._file_sink: FileSink | None = None

    def _span_finished(self, record: SpanRecord) -> None:
        if self.enabled:
            self.events.emit(
                "span",
                name=record.name,
                span_id=record.span_id,
                parent_id=record.parent_id,
                trace_id=record.trace_id,
                seconds=record.duration,
                attrs=record.attrs,
            )


_STATE = _State()


def enable(
    trace_path: str | None = None,
    ring_capacity: int = 4096,
    fresh: bool = True,
) -> None:
    """Turn instrumentation on.

    ``fresh=True`` (the default) starts a clean registry, tracer and event
    log so the observed state describes exactly one enabled window;
    ``fresh=False`` keeps accumulating into the existing ones.
    ``trace_path`` adds a JSONL :class:`FileSink` next to the always-on
    ring buffer.
    """
    if fresh:
        _STATE.registry = MetricsRegistry()
        _STATE.events = EventLog(RingSink(ring_capacity))
        _STATE.tracer = Tracer(on_finish=_STATE._span_finished)
        _STATE._file_sink = None
    if trace_path is not None:
        _STATE._file_sink = FileSink(trace_path)
        _STATE.events.add_sink(_STATE._file_sink)
    _STATE.enabled = True


def disable() -> None:
    """Turn instrumentation off and flush/close any file sink.

    The collected registry, tracer and event log stay readable until the
    next ``enable()`` — turn off, then render.
    """
    _STATE.enabled = False
    _STATE.events.close()


def is_enabled() -> bool:
    """The one flag every instrumented call site checks first."""
    return _STATE.enabled


def metrics_registry() -> MetricsRegistry:
    """The live registry (readable whether or not recording is on)."""
    return _STATE.registry


def tracer() -> Tracer:
    """The live tracer."""
    return _STATE.tracer


def event_log() -> EventLog:
    """The live event log."""
    return _STATE.events


def ring_sink() -> RingSink | None:
    """The event log's in-memory ring, if it has one (tests read this)."""
    for sink in _STATE.events.sinks:
        if isinstance(sink, RingSink):
            return sink
    return None


# -- guarded one-liners for instrumented call sites ----------------------------
def inc(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a counter — no-op while disabled."""
    if _STATE.enabled:
        _STATE.registry.counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels: object) -> None:
    """Observe a histogram sample — no-op while disabled."""
    if _STATE.enabled:
        _STATE.registry.histogram(name, **labels).observe(value)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge — no-op while disabled."""
    if _STATE.enabled:
        _STATE.registry.gauge(name, **labels).set(value)


def emit(kind: str, **payload: Any) -> None:
    """Emit a structured event — no-op while disabled."""
    if _STATE.enabled:
        _STATE.events.emit(kind, **payload)


def span(name: str, **attrs: Any) -> ContextManager:
    """Open a trace span — a shared null context while disabled."""
    if _STATE.enabled:
        return _STATE.tracer.span(name, **attrs)
    return nullcontext()


def trace_context() -> TraceContext | None:
    """The shippable trace position, or None while disabled."""
    if _STATE.enabled:
        return _STATE.tracer.context()
    return None


def adopt_spans(records: Sequence[Mapping[str, Any]] | None) -> None:
    """Graft worker-returned span dicts into the live tracer (if any)."""
    if _STATE.enabled and records:
        _STATE.tracer.adopt(records)


def render_metrics() -> str:
    """Prometheus-style text dump of the live registry."""
    from repro.observability.export import render_prometheus

    return render_prometheus(_STATE.registry)


def render_trace(unit: str = "ms") -> str:
    """Human-readable table of the live tracer's span forest."""
    from repro.observability.export import render_trace_table

    return render_trace_table(_STATE.tracer, unit=unit)
