"""Nested trace spans with a process-boundary-crossing context.

A :class:`Tracer` records a tree of timed spans: ``with tracer.span(name,
**attrs):`` opens a child of whatever span is currently open on this
thread, closes it on exit, and appends the finished
:class:`SpanRecord` to the tracer's ledger. The per-thread open-span
stack lives in ``threading.local`` so concurrent threads (the thread
worker backend, the DSE's evaluation pool) each grow their own branch of
the tree without interleaving parents.

Crossing the **process** boundary works by value, not by reference: the
parent captures a :class:`TraceContext` — trace id plus the currently open
span's id — and ships it inside the task message. The worker builds a
throwaway tracer seeded with that context, records its spans, and returns
them as plain dicts (:meth:`SpanRecord.to_dict`); the parent then
:meth:`Tracer.adopt`\\ s them, so worker-side chunk spans reattach under
the submit-side dispatch span they belong to and the assembled tree reads
compile → chunk dispatch → worker execution across process lines.

Span ids are namespaced by tracer (``id_prefix``): a worker-side tracer
mints ids disjoint from its parent's ``s…`` ids, so the shipped parent
reference can never be mistaken for an intra-batch one. Adopted ids are
additionally always remapped to fresh local ids — sibling tasks in one
worker process each start a throwaway tracer at 1, so batches collide
with each other even though neither collides with the parent.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Iterator, Mapping, Sequence


def _new_trace_id() -> str:
    return os.urandom(8).hex()


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    name: str
    span_id: str
    parent_id: str | None
    trace_id: str
    start: float
    end: float = 0.0
    attrs: dict[str, Any] = dc_field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            name=str(data["name"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            trace_id=str(data.get("trace_id", "")),
            start=float(data.get("start", 0.0)),
            end=float(data.get("end", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )


@dataclass(frozen=True)
class TraceContext:
    """The picklable capture of "where in the trace am I right now".

    Shipped inside worker task messages so remote spans can name their
    parent; ``None`` parent means the remote spans become roots of the
    trace (nothing was open at capture time).
    """

    trace_id: str
    parent_id: str | None = None


class Tracer:
    """Records a process-local tree of timed spans."""

    def __init__(
        self,
        trace_id: str | None = None,
        root_parent: str | None = None,
        on_finish: Callable[[SpanRecord], None] | None = None,
        id_prefix: str = "s",
    ) -> None:
        self.trace_id = trace_id if trace_id else _new_trace_id()
        #: parent assigned to spans opened with no enclosing span — how a
        #: worker-side tracer grafts its spans under the parent's submit span
        self.root_parent = root_parent
        #: span-id namespace. A worker-side tracer MUST use a prefix
        #: distinct from its parent's (e.g. ``w<pid>.``): the shipped
        #: ``root_parent`` travels by id, so a worker id that textually
        #: matched a parent id would make parent references ambiguous at
        #: adoption time.
        self.id_prefix = id_prefix
        #: called with each span as it closes (the facade uses this to
        #: mirror spans into the structured event log)
        self.on_finish = on_finish
        self._records: list[SpanRecord] = []
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------------
    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_span_id(self) -> str | None:
        """The id of this thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """Open a child span of the innermost open span on this thread."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else self.root_parent
        with self._lock:
            span_id = f"{self.id_prefix}{next(self._ids)}"
        record = SpanRecord(
            name=name,
            span_id=span_id,
            parent_id=parent,
            trace_id=self.trace_id,
            start=time.perf_counter(),
            attrs=dict(attrs),
        )
        stack.append(record)
        try:
            yield record
        finally:
            record.end = time.perf_counter()
            stack.pop()
            with self._lock:
                self._records.append(record)
            if self.on_finish is not None:
                self.on_finish(record)

    def context(self) -> TraceContext:
        """The shippable capture of the current position in the trace."""
        return TraceContext(self.trace_id, self.current_span_id())

    # -- cross-process reattachment -------------------------------------------------
    def adopt(self, records: Sequence[Mapping[str, Any]]) -> list[SpanRecord]:
        """Graft worker-side span dicts into this tracer's ledger.

        Span ids minted by another process can collide with local ones —
        including spans still *open* here, which are not in the ledger yet
        — so every incoming id is remapped to a fresh local id, and
        intra-batch parent references follow the remap. References to
        ids outside the batch (the shipped :class:`TraceContext`'s local
        parent) are preserved, which is what reattaches the remote subtree
        in the right place.
        """
        adopted: list[SpanRecord] = []
        batch = [SpanRecord.from_dict(d) for d in records]
        incoming = {r.span_id for r in batch}
        with self._lock:
            remap = {
                sid: f"{self.id_prefix}{next(self._ids)}"
                for sid in sorted(incoming)
            }
        for record in batch:
            record.trace_id = self.trace_id
            record.span_id = remap[record.span_id]
            if record.parent_id in incoming:
                record.parent_id = remap[record.parent_id]
            adopted.append(record)
        with self._lock:
            self._records.extend(adopted)
        if self.on_finish is not None:
            for record in adopted:
                self.on_finish(record)
        return adopted

    # -- inspection ----------------------------------------------------------------
    def records(self) -> list[SpanRecord]:
        """Finished spans, in completion order (snapshot copy)."""
        with self._lock:
            return list(self._records)

    def tree(self) -> list[tuple[SpanRecord, list]]:
        """The span forest as ``(record, children)`` pairs, start-ordered.

        Spans whose parent never closed (or was never adopted) surface as
        roots rather than disappearing.
        """
        records = sorted(self.records(), key=lambda r: r.start)
        nodes: dict[str, tuple[SpanRecord, list]] = {
            r.span_id: (r, []) for r in records
        }
        roots: list[tuple[SpanRecord, list]] = []
        for record in records:
            node = nodes[record.span_id]
            parent = nodes.get(record.parent_id) if record.parent_id else None
            if parent is None or parent[0] is record:
                roots.append(node)
            else:
                parent[1].append(node)
        return roots

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
