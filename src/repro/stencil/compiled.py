"""Compiled stencil execution: bound plans, plan cache, drop-in runner.

:class:`CompiledProgram` binds a :class:`~repro.stencil.plan.ProgramPlan` to
concrete preallocated NumPy buffers and executes it. All views, scratch
registers and scalar operands are resolved **once** at bind time — scalars
are pre-wrapped as 0-d arrays so the ufunc machinery never allocates a
wrapper per call — and the steady-state iteration loop is a flat sequence of
``ufunc(a, b, out)`` invocations that allocates no arrays (asserted in the
test suite via ``tracemalloc``; the only heap traffic is a few bytes of
errstate bookkeeping around flat-mode runs).

Batches of same-spec meshes execute **batch-major**: :func:`run_program_stacked`
stacks meshes on a true leading axis and replays one tape over each stack,
so every op vectorises across a whole stack in a single NumPy call (the
software analogue of the paper's back-to-back batch streaming, Section IV-B
eq. (15)). Batches whose stacked working set would spill out of cache are
executed in footprint-bounded chunks (:func:`stacked_chunk_sizes`) rather
than falling all the way back to per-mesh replay.

:class:`CompiledPlanCache` memoizes compiled programs by execution
semantics: ``(program structure, bound field specs, coefficient bindings,
batch)``.
Repeated runs — DSE trials, batched meshes, tiled blocks, pipeline passes —
compile once and replay the tape. A module-level :data:`DEFAULT_CACHE` is
shared by every execution path (pipeline, tiler, batcher, accelerator) so a
program compiled anywhere is warm everywhere.

Results are bit-identical (``np.array_equal``) to the tree-walking golden
interpreter in :mod:`repro.stencil.numpy_eval`; the equivalence is asserted
across every registered application and execution path in the test suite.
Bindings the plan model cannot reproduce exactly — inputs whose dtypes are
not uniform, where the interpreter's NumPy promotion rules apply — fall
back to the interpreter inside :func:`run_program_compiled`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import observability as obs
from repro.mesh.mesh import Field
from repro.resilience.cancel import CancelToken
from repro.stencil.plan import (
    FlatView,
    ProgramPlan,
    Reg,
    RegWindow,
    View,
    lower_program,
    program_token,
    required_inputs,
)
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError

#: execution engine names accepted across the dataflow layers. "parallel"
#: shares the compiled plans and is bit-identical to "compiled"; it differs
#: only in *dispatch* — batches fan their stacked chunks across a worker
#: pool (:mod:`repro.parallel`) instead of replaying them back to back.
#: "native" also shares the plans and stays bit-identical; it differs only
#: in *replay* — the steady tapes run as generated fused code
#: (:mod:`repro.stencil.native`) instead of per-op Python dispatch
ENGINES = ("compiled", "interpreter", "parallel", "native")

_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "neg": np.negative,
}

#: a bound tape op: ``fn(*args)`` with the out array included in ``args``
BoundOp = tuple[Callable, tuple]

#: FP-warning suppression for plans with flat-mode ops: their ghost lanes
#: (wrapped neighbours) can hit overflow/invalid values the interpreter
#: never computes
_FLAT_ERRSTATE = {"over": "ignore", "invalid": "ignore", "under": "ignore"}


def check_engine(engine: str) -> str:
    """Validate an engine name; returns it unchanged."""
    if engine not in ENGINES:
        raise ValidationError(
            f"unknown execution engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


class CompiledProgram:
    """A plan bound to concrete buffers, ready to iterate.

    ``batch`` stacks ``B`` same-spec meshes **batch-major**: every buffer
    and register gains a true leading axis of extent ``B`` and every tape
    op's view slices only the spatial axes, so one replay of the tape
    advances all ``B`` meshes at once — a single NumPy call per op, zero
    per-mesh Python dispatch (paper Section IV-B, eq. (15): the pipeline
    fill cost is paid once per batch). Because the stacking axis is a real
    leading dimension rather than a concatenation seam, no stencil shift
    can ever read across it: meshes are isolated structurally, not by
    halo bookkeeping.

    The convenience entry points are :meth:`run` (single mesh) and
    :meth:`run_stacked` (batched), both atomic (an internal lock serializes
    concurrent callers sharing a cached instance). The step-wise API
    (:meth:`load` / :meth:`run_iterations` / :meth:`result` /
    :meth:`result_stacked`) exposes the steady-state loop directly, e.g.
    for allocation profiling — it is **not** thread-safe across callers:
    use a private :class:`CompiledPlanCache` (or external locking) when
    stepping an instance by hand.
    """

    def __init__(self, plan: ProgramPlan, batch: int = 1):
        if batch < 1:
            raise ValidationError(f"batch must be positive, got {batch}")
        self.plan = plan
        self.batch = batch
        #: leading batch axis; empty for single-mesh instances so their
        #: buffer shapes (and plans cached before batching existed) are
        #: unchanged
        self._lead: tuple[int, ...] = (batch,) if batch > 1 else ()
        self._batch_index = (slice(None),) * len(self._lead)
        dtype = plan.mesh.dtype
        self._buffers: dict[str, np.ndarray] = {
            slot: np.zeros(self._lead + shape, dtype=dtype)
            for slot, shape in plan.buffers.items()
        }
        #: per-slot flattened per-mesh element count, for stack-extending
        #: flat lane windows across the batch
        self._slot_elems = {
            slot: int(np.prod(shape)) for slot, shape in plan.buffers.items()
        }
        self._registers: dict[tuple, np.ndarray] = {}
        for (shape, span), count in plan.registers.items():
            # flat lane-window registers (span > 0) extend across the whole
            # stack — one contiguous 1-D array covering all B meshes — so
            # flat ops never pay NumPy's per-row outer-loop cost; canonical
            # registers gain a true leading batch axis instead
            if span and batch > 1:
                alloc_shape: tuple[int, ...] = (shape[0] + (batch - 1) * span,)
            else:
                alloc_shape = self._lead + shape
            for idx in range(count):
                self._registers[(shape, span, idx)] = np.empty(
                    alloc_shape, dtype=dtype
                )
        self._constants: dict[tuple, np.ndarray] = {}
        self._warm = tuple(self._bind(tape) for tape in plan.warm)
        self._steady = (self._bind(plan.steady[0]), self._bind(plan.steady[1]))
        #: plans with flat-mode ops iterate under FP-warning suppression
        self._suppress_fp = any(
            op.flat for tape in plan.warm + plan.steady for op in tape
        )
        self._iterations_done = 0
        self._lock = threading.Lock()

    @property
    def nbytes(self) -> int:
        """Resident bytes of all owned buffers, registers and constants."""
        arrays = (
            list(self._buffers.values())
            + list(self._registers.values())
            + list(self._constants.values())
        )
        return sum(a.nbytes for a in arrays)

    # -- binding -------------------------------------------------------------
    def _bind_arg(self, ref):
        if isinstance(ref, View):
            return self._buffers[ref.slot][self._batch_index + ref.index]
        if isinstance(ref, Reg):
            return self._registers[(ref.shape, ref.span, ref.idx)]
        if isinstance(ref, FlatView):
            # one contiguous lane window across the whole stack: the lead
            # axis is outermost in C order, so flattening concatenates the
            # meshes and the per-mesh window extends by (B-1) mesh strides.
            # Lanes straddling a mesh seam compute discarded ghost values,
            # exactly like the row-wrap lanes within one mesh.
            stop = ref.stop
            if self.batch > 1:
                stop += (self.batch - 1) * self._slot_elems[ref.slot]
            return self._buffers[ref.slot].reshape(-1)[ref.start : stop]
        if isinstance(ref, RegWindow):
            base = self._registers[(ref.reg.shape, ref.reg.span, ref.reg.idx)]
            itemsize = base.itemsize
            if ref.reg.span and self.batch > 1:
                # stack-extended flat register: mesh b's lanes start one
                # mesh span (N lanes) after mesh b-1's
                lead_shape: tuple[int, ...] = (self.batch,)
                lead_strides: tuple[int, ...] = (ref.reg.span * itemsize,)
            else:
                lead_shape = self._lead
                lead_strides = base.strides[: len(self._lead)]
            return np.lib.stride_tricks.as_strided(
                base[..., ref.offset :],
                shape=lead_shape + ref.shape,
                strides=lead_strides + tuple(s * itemsize for s in ref.strides),
            )
        # folded scalar: pre-wrap as a 0-d array so ufunc calls do not
        # allocate a fresh wrapper every iteration
        return np.asarray(ref)

    def _expand_scalar(self, value: np.generic, shape: tuple[int, ...]) -> np.ndarray:
        """A full constant array for a folded scalar operand.

        The 0-d broadcast path of a ufunc costs ~3x a same-shape operand;
        splatting the constant once at bind time keeps the steady loop on
        the fast path. Elementwise results are unchanged. Arrays are shared
        across ops by (bit pattern, shape); batched instances splat one
        per-mesh array and let the ufunc broadcast it over the cheap
        leading batch axis.
        """
        key = (value.tobytes(), shape)
        arr = self._constants.get(key)
        if arr is None:
            arr = np.full(shape, value, dtype=value.dtype)
            self._constants[key] = arr
        return arr

    def _bind(self, tape) -> tuple[BoundOp, ...]:
        bound: list[BoundOp] = []
        for op in tape:
            dest = self._bind_arg(op.dest)
            if op.op in _UFUNCS:
                # canonical dests carry the leading batch axis (constants
                # broadcast over it); stack-extended flat registers do not
                if isinstance(op.dest, Reg) and op.dest.span:
                    const_shape = dest.shape
                else:
                    const_shape = dest.shape[len(self._lead) :]
                args = tuple(
                    self._expand_scalar(a, const_shape)
                    if isinstance(a, np.generic)
                    else self._bind_arg(a)
                    for a in op.args
                ) + (dest,)
                bound.append((_UFUNCS[op.op], args))
            else:  # copy / fill
                bound.append((np.copyto, (dest, self._bind_arg(op.args[0]))))
        return tuple(bound)

    # -- step-wise API --------------------------------------------------------
    def _stacked_view(self, buf: np.ndarray) -> np.ndarray:
        """A ``(B, *per-mesh storage)`` view of a buffer, for any batch."""
        return buf.reshape((self.batch,) + buf.shape[len(self._lead) :])

    def _load_expansions(self) -> None:
        """Fill the ``inx:`` broadcast buffers from the loaded inputs.

        Each expansion splats one fixed component of an input field across
        the consuming run's component axis (flat-mode merged runs need
        every operand at the same element stride); inputs never rotate, so
        load time is the only point the expansions can change.
        """
        for slot, (fname, comp) in self.plan.expansions.items():
            src = self._buffers[f"in:{fname}"][..., comp : comp + 1]
            np.copyto(self._buffers[slot], src)

    def load(self, fields: Mapping[str, Field | np.ndarray]) -> None:
        """Copy the caller's input fields into the plan's input buffers.

        Values may be :class:`Field` instances (per-mesh storage shape) or
        raw arrays; a batched instance expects batch-major stacks of shape
        ``(B, *storage_shape)`` (see :meth:`load_stacked` for loading from
        a sequence of per-mesh environments directly).
        """
        for name in self.plan.inputs:
            field = fields.get(name)
            if field is None:
                raise ValidationError(f"field '{name}' is not bound")
            data = field.data if isinstance(field, Field) else np.asarray(field)
            buf = self._buffers[f"in:{name}"]
            if data.shape != buf.shape:
                raise ValidationError(
                    f"field '{name}' shape {data.shape} does not match "
                    f"the compiled plan's shape {buf.shape}"
                    + (
                        f" (batch-major: {self.batch} meshes stacked on a "
                        f"leading axis)"
                        if self.batch > 1
                        else ""
                    )
                )
            if data.dtype != buf.dtype:
                # a silent cast here would diverge from the interpreter,
                # which computes with NumPy promotion on the native dtypes
                raise ValidationError(
                    f"field '{name}' dtype {data.dtype} does not match "
                    f"the compiled plan's dtype {buf.dtype}; mixed-dtype "
                    f"bindings run on the interpreter"
                )
            np.copyto(buf, data)
        self._load_expansions()
        self._iterations_done = 0

    def load_stacked(self, batch_fields: Sequence[Mapping[str, Field]]) -> None:
        """Load ``B`` per-mesh environments into the batch-major buffers.

        Copies each mesh's fields straight into its slab of the stacked
        input buffers — no intermediate stacking allocation.
        """
        if len(batch_fields) != self.batch:
            raise ValidationError(
                f"expected {self.batch} batch members, got {len(batch_fields)}"
            )
        for name in self.plan.inputs:
            stack = self._stacked_view(self._buffers[f"in:{name}"])
            for b, env in enumerate(batch_fields):
                field = env.get(name)
                if field is None:
                    raise ValidationError(
                        f"batch member {b}: field '{name}' is not bound"
                    )
                if field.data.shape != stack.shape[1:]:
                    raise ValidationError(
                        f"batch member {b}: field '{name}' shape "
                        f"{field.data.shape} does not match the compiled "
                        f"plan's mesh shape {stack.shape[1:]}"
                    )
                if field.data.dtype != stack.dtype:
                    raise ValidationError(
                        f"batch member {b}: field '{name}' dtype "
                        f"{field.data.dtype} does not match the compiled "
                        f"plan's dtype {stack.dtype}; mixed-dtype bindings "
                        f"run on the interpreter"
                    )
                np.copyto(stack[b], field.data)
        self._load_expansions()
        self._iterations_done = 0

    def run_iterations(self, n: int) -> None:
        """Execute ``n`` further iterations; array-allocation-free after warm-up.

        Plans containing flat-mode ops run under :data:`_FLAT_ERRSTATE` for
        the whole call: flat-mode ghost lanes can hit overflow/invalid
        values the interpreter never computes, and the resulting warnings
        would break callers running with warnings-as-errors or
        ``np.errstate(all='raise')``. Results are unaffected and stay
        bit-identical; the trade-off is that genuine FP warnings the
        program would otherwise emit during these iterations are suppressed
        along with the spurious ghost-lane ones. (One errstate toggle per
        call, not per op — the hot loop stays free of per-iteration
        bookkeeping.)
        """
        if self._suppress_fp:
            with np.errstate(**_FLAT_ERRSTATE):
                self._iterate(n)
        else:
            self._iterate(n)

    def _iterate(self, n: int) -> None:
        # warm prefix and steady ping-pong as two flat loops: the steady
        # path does no per-iteration branch or modulo bookkeeping
        done = self._iterations_done
        end = done + n
        warm, steady = self._warm, self._steady
        warm_count = len(warm)
        i = done
        while i < warm_count and i < end:
            for fn, args in warm[i]:
                fn(*args)
            i += 1
        if i < end:
            first, second = steady
            if (i - warm_count) & 1:
                first, second = second, first
            while i + 1 < end:
                for fn, args in first:
                    fn(*args)
                for fn, args in second:
                    fn(*args)
                i += 2
            if i < end:
                for fn, args in first:
                    fn(*args)
        self._iterations_done = end

    def result(
        self, fields: Mapping[str, Field], copy: bool = True
    ) -> dict[str, Field]:
        """The field environment after the iterations run so far.

        Mirrors the interpreter: the caller's bindings, with every produced
        field replaced by a fresh copy of its final buffer. Batched
        instances materialize per-mesh environments via
        :meth:`result_stacked` instead.

        ``copy=False`` skips the per-buffer copies: produced fields alias
        the live ping-pong buffers. For callers that immediately re-copy
        the data themselves (the tiler's write-back, the parallel workers'
        shared-memory marshalling) — the aliases are invalidated by the
        instance's next :meth:`load` or iteration.
        """
        if self.batch > 1:
            raise ValidationError(
                "this compiled program is batch-major; use result_stacked()"
            )
        env: dict[str, Field] = dict(fields)
        for fname, slot in self.plan.final_env(self._iterations_done).items():
            spec = self.plan.produced_specs[fname]
            buf = self._buffers[slot]
            env[fname] = Field(fname, spec, buf.copy() if copy else buf)
        return env

    def result_stacked(
        self, batch_fields: Sequence[Mapping[str, Field]], copy: bool = True
    ) -> list[dict[str, Field]]:
        """Per-mesh field environments after the iterations run so far.

        Element ``b`` mirrors what an independent single-mesh run on
        ``batch_fields[b]`` would have returned. ``copy=False`` returns
        per-mesh *views* of the stacked buffers (same aliasing caveats as
        :meth:`result`).
        """
        if len(batch_fields) != self.batch:
            raise ValidationError(
                f"expected {self.batch} batch members, got {len(batch_fields)}"
            )
        envs: list[dict[str, Field]] = [dict(env) for env in batch_fields]
        for fname, slot in self.plan.final_env(self._iterations_done).items():
            spec = self.plan.produced_specs[fname]
            stack = self._stacked_view(self._buffers[slot])
            for b in range(self.batch):
                mesh = stack[b]
                envs[b][fname] = Field(fname, spec, mesh.copy() if copy else mesh)
        return envs

    def final_arrays(self) -> dict[str, np.ndarray]:
        """Batch-major ``(B, *storage)`` views of every produced field.

        The raw-buffer counterpart of :meth:`result` / :meth:`result_stacked`
        for callers that marshal results themselves (the parallel workers
        copy these straight into shared memory): no Field wrappers, no
        copies — the views alias the live ping-pong buffers, so read them
        before the next :meth:`load`.
        """
        return {
            fname: self._stacked_view(self._buffers[slot])
            for fname, slot in self.plan.final_env(self._iterations_done).items()
        }

    # -- one-call API ---------------------------------------------------------
    def run(
        self, fields: Mapping[str, Field], niter: int, copy: bool = True
    ) -> dict[str, Field]:
        """Run the full solve: load, iterate ``niter`` times, materialize."""
        if niter < 0:
            raise ValidationError(f"niter must be non-negative, got {niter}")
        if niter == 0:
            return dict(fields)
        with self._lock:
            self.load(fields)
            self.run_iterations(niter)
            return self.result(fields, copy=copy)

    def run_stacked(
        self,
        batch_fields: Sequence[Mapping[str, Field]],
        niter: int,
        copy: bool = True,
    ) -> list[dict[str, Field]]:
        """Solve ``B`` same-spec meshes in one tape replay over the stack."""
        if niter < 0:
            raise ValidationError(f"niter must be non-negative, got {niter}")
        if len(batch_fields) != self.batch:
            raise ValidationError(
                f"expected {self.batch} batch members, got {len(batch_fields)}"
            )
        if niter == 0:
            return [dict(env) for env in batch_fields]
        with self._lock:
            self.load_stacked(batch_fields)
            self.run_iterations(niter)
            return self.result_stacked(batch_fields, copy=copy)


class CompiledPlanCache:
    """LRU cache of compiled programs, keyed by execution semantics.

    The key is ``(program token, bound field specs, coefficient bindings)``:
    equal-by-structure programs share entries, different mesh shapes / block
    shapes / dtypes / coefficient overrides get their own. Bounded both by
    entry count and by resident buffer bytes — a sweep over many large
    distinct meshes evicts old plans instead of pinning gigabytes of
    ping-pong buffers in a process-wide cache. Thread-safe.
    """

    def __init__(self, capacity: int = 64, max_bytes: int = 512 * 1024 * 1024):
        if capacity < 1:
            raise ValidationError(f"cache capacity must be positive, got {capacity}")
        if max_bytes < 1:
            raise ValidationError(f"cache max_bytes must be positive, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, CompiledProgram] = OrderedDict()
        #: lowered plans memoized separately from bound instances: plans are
        #: batch-independent, so every batch size of one binding shares one
        #: lowering (and the stacked-dispatch heuristic can read a plan's
        #: footprint without binding any buffers). Plans hold no arrays, so
        #: this memo is bounded by entry count only.
        self._plans: OrderedDict[tuple, ProgramPlan] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        #: lookups answered from the cache
        self.hits = 0
        #: lookups that compiled a fresh plan
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(
        self,
        program: StencilProgram,
        fields: Mapping[str, Field],
        coefficients: Mapping[str, float] | None,
    ) -> tuple:
        specs = []
        for name in required_inputs(program):
            field = fields.get(name)
            if field is None:
                raise ValidationError(
                    f"program '{program.name}' needs field '{name}' bound"
                )
            specs.append((name, field.spec))
        known = set()
        for kernel in program.kernels():
            known.update(kernel.coefficients)
        overrides = tuple(
            sorted(
                (name, float(value))
                for name, value in (coefficients or {}).items()
                if name in known
            )
        )
        return (program_token(program), tuple(specs), overrides)

    def plan_for(
        self,
        program: StencilProgram,
        fields: Mapping[str, Field],
        coefficients: Mapping[str, float] | None = None,
    ) -> ProgramPlan:
        """The lowered (but unbound) plan for this binding, memoized.

        Plans are batch-independent, so one lowering serves the single-mesh
        instance and every batch-major instance of the same binding; the
        stacked-dispatch heuristic also reads ``plan.nbytes`` from here
        without allocating any buffers.
        """
        key = self._key(program, fields, coefficients)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
        inputs = required_inputs(program)
        state = program.state_fields[0]
        mesh = fields[state].spec if state in fields else fields[inputs[0]].spec
        input_specs = {name: fields[name].spec for name in inputs}
        with obs.span("plan.compile", program=program.name):
            t0 = time.perf_counter()
            plan = lower_program(program, mesh, input_specs, coefficients)
        if obs.is_enabled():
            seconds = time.perf_counter() - t0
            obs.observe("plan.compile_seconds", seconds)
            obs.emit(
                "plan.compile",
                program=program.name,
                mesh=list(mesh.shape),
                seconds=seconds,
                plan_bytes=plan.nbytes,
            )
        with self._lock:
            incumbent = self._plans.get(key)  # racing lowering: keep it
            if incumbent is not None:
                return incumbent
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
        return plan

    def get(
        self,
        program: StencilProgram,
        fields: Mapping[str, Field],
        coefficients: Mapping[str, float] | None = None,
        batch: int = 1,
        native: bool = False,
    ) -> CompiledProgram:
        """The compiled program for this binding, compiling on first use.

        ``batch > 1`` yields a batch-major instance whose buffers stack
        ``batch`` same-spec meshes on a leading axis (``fields`` is one
        representative mesh environment); the plan is shared across batch
        sizes via :meth:`plan_for`, only the bound buffers differ.

        ``native=True`` yields a :class:`~repro.stencil.native.NativeProgram`
        — same plan, same buffers, generated steady-loop code — cached
        under its own key next to the plain instance, so the one-time
        lowering/JIT cost is paid per (binding, batch), not per run.
        """
        key = self._key(program, fields, coefficients) + (batch, native)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                obs.inc("plan.cache_hits")
                return entry
        if native:
            from repro.stencil.native import NativeProgram as _cls
        else:
            _cls = CompiledProgram
        compiled = _cls(
            self.plan_for(program, fields, coefficients), batch=batch
        )
        with self._lock:
            if key in self._entries:  # racing compile: keep the incumbent
                self.hits += 1
                obs.inc("plan.cache_hits")
                self._entries.move_to_end(key)
                return self._entries[key]
            self._entries[key] = compiled
            self._bytes += compiled.nbytes
            self.misses += 1
            obs.inc("plan.cache_misses")
            obs.emit(
                "plan.cache_miss",
                program=program.name,
                batch=batch,
                instance_bytes=compiled.nbytes,
            )
            # evict LRU-first past either bound, but always keep the entry
            # just inserted (even one over-budget plan must be usable)
            while len(self._entries) > 1 and (
                len(self._entries) > self.capacity or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
        return compiled

    def clear(self) -> None:
        """Drop all entries and memoized plans (buffers are freed with them)."""
        with self._lock:
            self._entries.clear()
            self._plans.clear()
            self._bytes = 0


#: process-wide cache shared by every default execution path
DEFAULT_CACHE = CompiledPlanCache()

#: default ceiling on a stacked chunk's resident bytes (buffers + registers
#: over all meshes in the chunk). Stacking amortizes per-op Python/ufunc
#: launch cost, which dominates while the working set is cache-resident;
#: past roughly the L2 scale the stacked stream spills and smaller chunks
#: (whose working set still fits) are faster — measured crossover on the
#: batched benchmarks sits between ~0.4 and ~4 MB. Batches too large to
#: stack whole are executed in footprint-bounded chunks rather than
#: replayed per mesh (see :func:`stacked_chunk_sizes`).
STACKED_BYTES_LIMIT = 1 << 20


def stacked_chunk_sizes(
    batch: int, per_mesh_bytes: int, max_bytes: float
) -> list[int]:
    """Footprint-bounded chunk sizes for stacking ``batch`` meshes.

    The chunk capacity is the largest ``C`` whose stacked working set
    ``C * per_mesh_bytes`` stays within ``max_bytes`` (at least 1: even a
    single over-budget mesh must run). The batch splits into full chunks of
    that capacity plus one remainder, so every full chunk reuses **one**
    compiled batch-major instance — ``[C, C, ..., r]`` rather than
    near-equal sizes, minimizing distinct plan bindings in the cache.

    Degenerate ends recover the previous all-or-nothing behaviour: a budget
    covering the whole batch yields ``[batch]`` (one stacked dispatch), a
    budget below one mesh yields ``[1] * batch`` (per-mesh replay).
    """
    if batch < 1:
        raise ValidationError(f"batch must be positive, got {batch}")
    if max_bytes != max_bytes or max_bytes < 0:  # NaN or negative
        raise ValidationError(f"max_bytes must be >= 0, got {max_bytes}")
    if per_mesh_bytes <= 0 or max_bytes == float("inf"):
        cap = batch
    else:
        cap = int(max_bytes // per_mesh_bytes)
    cap = max(1, min(batch, cap))
    full, rem = divmod(batch, cap)
    return [cap] * full + ([rem] if rem else [])


def run_program_compiled(
    program: StencilProgram,
    fields: Mapping[str, Field],
    niter: int,
    coefficients: Mapping[str, float] | None = None,
    cache: CompiledPlanCache | None = None,
    engine: str = "compiled",
    copy: bool = True,
) -> dict[str, Field]:
    """Drop-in replacement for the interpreter's ``run_program``.

    Compiles (or reuses) the plan for this binding and replays it. Returns
    the same environment shape as the golden interpreter, with bit-identical
    field contents.

    ``engine="native"`` replays through a
    :class:`~repro.stencil.native.NativeProgram` (generated fused steady
    loop, still bit-identical); every other value uses the plain tape
    replay. ``copy=False`` returns buffer-aliasing results (see
    :meth:`CompiledProgram.result`).

    Plans compute every op in one dtype, while the interpreter applies
    NumPy's promotion rules to the fields' native dtypes — so a binding
    whose inputs do not all share one dtype (e.g. a float64 constant field
    on a float32 mesh) is handed straight to the golden interpreter rather
    than silently cast.
    """
    if niter < 0:
        raise ValidationError(f"niter must be non-negative, got {niter}")
    for name in required_inputs(program):
        if name not in fields:
            raise ValidationError(
                f"program '{program.name}' needs field '{name}' bound"
            )
    if niter == 0:
        # nothing to run: do not compile (and cache) a plan for it
        return dict(fields)
    dtypes = {
        fields[name].spec.dtype for name in required_inputs(program)
    }
    if len(dtypes) > 1:
        from repro.stencil.numpy_eval import run_program

        return run_program(program, fields, niter, coefficients, engine="interpreter")
    cache = cache if cache is not None else DEFAULT_CACHE
    compiled = cache.get(program, fields, coefficients, native=engine == "native")
    return compiled.run(fields, niter, copy=copy)


def check_stacked_batch(
    program: StencilProgram, batch_fields: Sequence[Mapping[str, Field]]
) -> tuple[tuple[str, ...], Mapping[str, Field]]:
    """Validate a batch for stacked execution; shared with the parallel path.

    Every member must bind all required inputs and all members must share
    one spec per field (stacking is structural — one plan, one buffer
    shape). Returns ``(required input names, representative environment)``.
    """
    if not batch_fields:
        raise ValidationError("batch must contain at least one mesh")
    required = required_inputs(program)
    first = batch_fields[0]
    for b, env in enumerate(batch_fields):
        for name in required:
            if name not in env:
                raise ValidationError(
                    f"batch member {b}: program '{program.name}' needs field "
                    f"'{name}' bound"
                )
            if env[name].spec != first[name].spec:
                raise ValidationError(
                    f"all meshes in a batch must share the same spec: field "
                    f"'{name}' has {env[name].spec} in member {b} vs "
                    f"{first[name].spec} in member 0"
                )
    return required, first


def record_dispatch_stats(
    stats: dict | None,
    chunks: Sequence[int],
    backend: str | None = None,
    workers: int | None = None,
) -> None:
    """Write the dispatch-accounting keys and mirror them to the registry.

    The ``stats=`` dict is the per-call **view** — its key contract
    (``chunks``/``dispatches``/``stacked_meshes``, plus
    ``backend``/``workers`` on the parallel paths) is stable and shared by
    the serial and parallel engines. The same quantities feed the
    process-wide :mod:`repro.observability` registry when it is enabled,
    labelled by the dispatching backend, so aggregate counters and the
    per-call dicts can never drift apart.
    """
    if stats is not None:
        stats["chunks"] = list(chunks)
        stats["dispatches"] = len(chunks)
        stats["stacked_meshes"] = sum(c for c in chunks if c > 1)
        if backend is not None:
            stats["backend"] = backend
        if workers is not None:
            stats["workers"] = workers
    if obs.is_enabled():
        label = backend if backend is not None else "compiled"
        obs.inc("exec.dispatches", len(chunks), backend=label)
        obs.inc("exec.meshes", sum(chunks), backend=label)
        obs.inc(
            "exec.stacked_meshes",
            sum(c for c in chunks if c > 1),
            backend=label,
        )


def run_program_stacked(
    program: StencilProgram,
    batch_fields: Sequence[Mapping[str, Field]],
    niter: int,
    coefficients: Mapping[str, float] | None = None,
    cache: CompiledPlanCache | None = None,
    max_stack_bytes: float | None = None,
    stats: dict | None = None,
    cancel: CancelToken | None = None,
    engine: str = "compiled",
) -> list[dict[str, Field]]:
    """Solve ``B`` independent same-spec meshes in stacked tape dispatches.

    ``engine="native"`` runs every chunk through the generated steady-loop
    replay (:class:`~repro.stencil.native.NativeProgram`); results stay
    bit-identical either way.

    The batch members are stacked batch-major — a true leading axis, so
    meshes can never couple across the stacking boundary — and every tape
    op vectorises over a whole stack in a single NumPy call (paper Section
    IV-B: the pipeline fill latency, and here the whole per-mesh Python
    dispatch, is paid once per stack). Element ``b`` of the returned list
    is bit-identical to ``run_program_compiled(program, batch_fields[b],
    niter)`` — and therefore to the golden interpreter.

    ``max_stack_bytes`` bounds each stack's working set (default
    :data:`STACKED_BYTES_LIMIT`): a batch whose ``B`` meshes exceed it is
    executed in footprint-bounded **chunks** (:func:`stacked_chunk_sizes`)
    — full chunks share one compiled batch-major instance, so a
    large-working-set batch still pays one tape dispatch per chunk instead
    of one per mesh, while each chunk's stream stays cache-resident. A
    budget below one mesh footprint degrades to per-mesh replay; pass
    ``float("inf")`` to force one whole-batch stack (the benchmarks do, to
    measure the mechanism itself).

    Other per-mesh fallbacks: a single-member batch routes through the
    single-mesh path (sharing its cached plan), and bindings with
    non-uniform input dtypes run each mesh on the interpreter exactly as
    :func:`run_program_compiled` would.

    ``stats``, when given, receives the dispatch accounting of the call:
    ``chunks`` (the chunk-size list), ``dispatches`` (tape dispatches
    actually issued — ``len(chunks)``), ``stacked_meshes`` (meshes that
    rode a stack of size > 1) and ``chunk_seconds`` (per-chunk wall-clock
    times, in chunk order — the raw samples behind the mix layer's
    latency percentiles).

    ``cancel``, when given, is polled at every chunk boundary: a set token
    raises :class:`~repro.resilience.ExecutionCancelled` before the next
    chunk dispatches (a chunk already replaying always finishes — tape
    replays are bounded and never torn down mid-flight).
    """
    required, first = check_stacked_batch(program, batch_fields)
    if niter < 0:
        raise ValidationError(f"niter must be non-negative, got {niter}")
    if cancel is not None:
        cancel.raise_if_set("stacked dispatch")

    def _account(chunks: list[int]) -> None:
        record_dispatch_stats(stats, chunks)

    def _timed(chunk_seconds: list[float], index: int, size: int, fn):
        if cancel is not None:
            cancel.raise_if_set(f"stacked chunk {index}")
        with obs.span("exec.chunk", index=index, size=size):
            t0 = time.perf_counter()
            out = fn()
            chunk_seconds.append(time.perf_counter() - t0)
        obs.observe("exec.chunk_seconds", chunk_seconds[-1], backend="compiled")
        return out

    chunk_seconds: list[float] = []
    if stats is not None:
        stats["chunk_seconds"] = chunk_seconds

    if niter == 0:
        _account([])
        return [dict(env) for env in batch_fields]
    dtypes = {first[name].spec.dtype for name in required}
    if len(dtypes) > 1:
        from repro.stencil.numpy_eval import run_program

        _account([1] * len(batch_fields))
        return [
            _timed(
                chunk_seconds, b, 1,
                lambda env=env: run_program(
                    program, env, niter, coefficients, engine="interpreter"
                ),
            )
            for b, env in enumerate(batch_fields)
        ]
    cache = cache if cache is not None else DEFAULT_CACHE
    if len(batch_fields) == 1:
        _account([1])
        return [
            _timed(
                chunk_seconds, 0, 1,
                lambda: run_program_compiled(
                    program, first, niter, coefficients, cache, engine=engine
                ),
            )
        ]
    limit = max_stack_bytes if max_stack_bytes is not None else STACKED_BYTES_LIMIT
    with obs.span(
        "exec.stacked",
        program=program.name,
        batch=len(batch_fields),
        niter=niter,
        engine="compiled",
    ):
        plan = cache.plan_for(program, first, coefficients)
        chunks = stacked_chunk_sizes(len(batch_fields), plan.nbytes, limit)
        _account(chunks)
        obs.emit(
            "exec.dispatch",
            program=program.name,
            backend="compiled",
            chunks=list(chunks),
            niter=niter,
        )
        results: list[dict[str, Field]] = []
        start = 0
        for index, size in enumerate(chunks):
            members = batch_fields[start : start + size]
            start += size
            if size == 1:
                results.append(
                    _timed(
                        chunk_seconds, index, 1,
                        lambda m=members[0]: run_program_compiled(
                            program, m, niter, coefficients, cache, engine=engine
                        ),
                    )
                )
            else:
                compiled = cache.get(
                    program, first, coefficients, batch=size,
                    native=engine == "native",
                )
                results.extend(
                    _timed(
                        chunk_seconds, index, size,
                        lambda c=compiled, m=members: c.run_stacked(m, niter),
                    )
                )
    return results
