"""Compiled stencil execution: bound plans, plan cache, drop-in runner.

:class:`CompiledProgram` binds a :class:`~repro.stencil.plan.ProgramPlan` to
concrete preallocated NumPy buffers and executes it. All views, scratch
registers and scalar operands are resolved **once** at bind time — scalars
are pre-wrapped as 0-d arrays so the ufunc machinery never allocates a
wrapper per call — and the steady-state iteration loop is a flat sequence of
``ufunc(a, b, out)`` invocations that allocates no arrays (asserted in the
test suite via ``tracemalloc``; the only heap traffic is a few bytes of
errstate bookkeeping around flat-mode runs).

:class:`CompiledPlanCache` memoizes compiled programs by execution
semantics: ``(program structure, bound field specs, coefficient bindings)``.
Repeated runs — DSE trials, batched meshes, tiled blocks, pipeline passes —
compile once and replay the tape. A module-level :data:`DEFAULT_CACHE` is
shared by every execution path (pipeline, tiler, batcher, accelerator) so a
program compiled anywhere is warm everywhere.

Results are bit-identical (``np.array_equal``) to the tree-walking golden
interpreter in :mod:`repro.stencil.numpy_eval`; the equivalence is asserted
across every registered application and execution path in the test suite.
Bindings the plan model cannot reproduce exactly — inputs whose dtypes are
not uniform, where the interpreter's NumPy promotion rules apply — fall
back to the interpreter inside :func:`run_program_compiled`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Mapping

import numpy as np

from repro.mesh.mesh import Field
from repro.stencil.plan import (
    FlatView,
    ProgramPlan,
    Reg,
    RegWindow,
    View,
    lower_program,
    program_token,
    required_inputs,
)
from repro.stencil.program import StencilProgram
from repro.util.errors import ValidationError

#: execution engine names accepted across the dataflow layers
ENGINES = ("compiled", "interpreter")

_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "neg": np.negative,
}

#: a bound tape op: ``fn(*args)`` with the out array included in ``args``
BoundOp = tuple[Callable, tuple]

#: FP-warning suppression for plans with flat-mode ops: their ghost lanes
#: (wrapped neighbours) can hit overflow/invalid values the interpreter
#: never computes
_FLAT_ERRSTATE = {"over": "ignore", "invalid": "ignore", "under": "ignore"}


def check_engine(engine: str) -> str:
    """Validate an engine name; returns it unchanged."""
    if engine not in ENGINES:
        raise ValidationError(
            f"unknown execution engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


class CompiledProgram:
    """A plan bound to concrete buffers, ready to iterate.

    The convenience entry point is :meth:`run`, which is atomic (an
    internal lock serializes concurrent callers sharing a cached instance).
    The step-wise API (:meth:`load` / :meth:`run_iterations` /
    :meth:`result`) exposes the steady-state loop directly, e.g. for
    allocation profiling — it is **not** thread-safe across callers: use a
    private :class:`CompiledPlanCache` (or external locking) when stepping
    an instance by hand.
    """

    def __init__(self, plan: ProgramPlan):
        self.plan = plan
        dtype = plan.mesh.dtype
        self._buffers: dict[str, np.ndarray] = {
            slot: np.zeros(shape, dtype=dtype) for slot, shape in plan.buffers.items()
        }
        self._registers: dict[tuple, np.ndarray] = {}
        for shape, count in plan.registers.items():
            for idx in range(count):
                self._registers[(shape, idx)] = np.empty(shape, dtype=dtype)
        self._constants: dict[tuple, np.ndarray] = {}
        self._warm = tuple(self._bind(tape) for tape in plan.warm)
        self._steady = (self._bind(plan.steady[0]), self._bind(plan.steady[1]))
        #: plans with flat-mode ops iterate under FP-warning suppression
        self._suppress_fp = any(
            op.flat for tape in plan.warm + plan.steady for op in tape
        )
        self._iterations_done = 0
        self._lock = threading.Lock()

    @property
    def nbytes(self) -> int:
        """Resident bytes of all owned buffers, registers and constants."""
        arrays = (
            list(self._buffers.values())
            + list(self._registers.values())
            + list(self._constants.values())
        )
        return sum(a.nbytes for a in arrays)

    # -- binding -------------------------------------------------------------
    def _bind_arg(self, ref):
        if isinstance(ref, View):
            return self._buffers[ref.slot][ref.index]
        if isinstance(ref, Reg):
            return self._registers[(ref.shape, ref.idx)]
        if isinstance(ref, FlatView):
            return self._buffers[ref.slot].reshape(-1)[ref.start : ref.stop]
        if isinstance(ref, RegWindow):
            base = self._registers[(ref.reg.shape, ref.reg.idx)]
            itemsize = base.itemsize
            return np.lib.stride_tricks.as_strided(
                base[ref.offset :],
                shape=ref.shape,
                strides=tuple(s * itemsize for s in ref.strides),
            )
        # folded scalar: pre-wrap as a 0-d array so ufunc calls do not
        # allocate a fresh wrapper every iteration
        return np.asarray(ref)

    def _expand_scalar(self, value: np.generic, shape: tuple[int, ...]) -> np.ndarray:
        """A full constant array for a folded scalar operand.

        The 0-d broadcast path of a ufunc costs ~3x a same-shape operand;
        splatting the constant once at bind time keeps the steady loop on
        the fast path. Elementwise results are unchanged. Arrays are shared
        across ops by (bit pattern, shape).
        """
        key = (value.tobytes(), shape)
        arr = self._constants.get(key)
        if arr is None:
            arr = np.full(shape, value, dtype=value.dtype)
            self._constants[key] = arr
        return arr

    def _bind(self, tape) -> tuple[BoundOp, ...]:
        bound: list[BoundOp] = []
        for op in tape:
            dest = self._bind_arg(op.dest)
            if op.op in _UFUNCS:
                args = tuple(
                    self._expand_scalar(a, dest.shape)
                    if isinstance(a, np.generic)
                    else self._bind_arg(a)
                    for a in op.args
                ) + (dest,)
                bound.append((_UFUNCS[op.op], args))
            else:  # copy / fill
                bound.append((np.copyto, (dest, self._bind_arg(op.args[0]))))
        return tuple(bound)

    # -- step-wise API --------------------------------------------------------
    def load(self, fields: Mapping[str, Field]) -> None:
        """Copy the caller's input fields into the plan's input buffers."""
        for name in self.plan.inputs:
            field = fields.get(name)
            if field is None:
                raise ValidationError(f"field '{name}' is not bound")
            buf = self._buffers[f"in:{name}"]
            if field.data.shape != buf.shape:
                raise ValidationError(
                    f"field '{name}' shape {field.data.shape} does not match "
                    f"the compiled plan's shape {buf.shape}"
                )
            if field.data.dtype != buf.dtype:
                # a silent cast here would diverge from the interpreter,
                # which computes with NumPy promotion on the native dtypes
                raise ValidationError(
                    f"field '{name}' dtype {field.data.dtype} does not match "
                    f"the compiled plan's dtype {buf.dtype}; mixed-dtype "
                    f"bindings run on the interpreter"
                )
            np.copyto(buf, field.data)
        self._iterations_done = 0

    def run_iterations(self, n: int) -> None:
        """Execute ``n`` further iterations; array-allocation-free after warm-up.

        Plans containing flat-mode ops run under :data:`_FLAT_ERRSTATE` for
        the whole call: flat-mode ghost lanes can hit overflow/invalid
        values the interpreter never computes, and the resulting warnings
        would break callers running with warnings-as-errors or
        ``np.errstate(all='raise')``. Results are unaffected and stay
        bit-identical; the trade-off is that genuine FP warnings the
        program would otherwise emit during these iterations are suppressed
        along with the spurious ghost-lane ones. (One errstate toggle per
        call, not per op — the hot loop stays free of per-iteration
        bookkeeping.)
        """
        if self._suppress_fp:
            with np.errstate(**_FLAT_ERRSTATE):
                self._iterate(n)
        else:
            self._iterate(n)

    def _iterate(self, n: int) -> None:
        done = self._iterations_done
        warm, steady = self._warm, self._steady
        warm_count = len(warm)
        for i in range(done, done + n):
            if i < warm_count:
                tape = warm[i]
            else:
                tape = steady[(i - warm_count) % 2]
            for fn, args in tape:
                fn(*args)
        self._iterations_done = done + n

    def result(self, fields: Mapping[str, Field]) -> dict[str, Field]:
        """The field environment after the iterations run so far.

        Mirrors the interpreter: the caller's bindings, with every produced
        field replaced by a fresh copy of its final buffer.
        """
        env: dict[str, Field] = dict(fields)
        for fname, slot in self.plan.final_env(self._iterations_done).items():
            spec = self.plan.produced_specs[fname]
            env[fname] = Field(fname, spec, self._buffers[slot].copy())
        return env

    # -- one-call API ---------------------------------------------------------
    def run(
        self, fields: Mapping[str, Field], niter: int
    ) -> dict[str, Field]:
        """Run the full solve: load, iterate ``niter`` times, materialize."""
        if niter < 0:
            raise ValidationError(f"niter must be non-negative, got {niter}")
        if niter == 0:
            return dict(fields)
        with self._lock:
            self.load(fields)
            self.run_iterations(niter)
            return self.result(fields)


class CompiledPlanCache:
    """LRU cache of compiled programs, keyed by execution semantics.

    The key is ``(program token, bound field specs, coefficient bindings)``:
    equal-by-structure programs share entries, different mesh shapes / block
    shapes / dtypes / coefficient overrides get their own. Bounded both by
    entry count and by resident buffer bytes — a sweep over many large
    distinct meshes evicts old plans instead of pinning gigabytes of
    ping-pong buffers in a process-wide cache. Thread-safe.
    """

    def __init__(self, capacity: int = 64, max_bytes: int = 512 * 1024 * 1024):
        if capacity < 1:
            raise ValidationError(f"cache capacity must be positive, got {capacity}")
        if max_bytes < 1:
            raise ValidationError(f"cache max_bytes must be positive, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, CompiledProgram] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        #: lookups answered from the cache
        self.hits = 0
        #: lookups that compiled a fresh plan
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(
        self,
        program: StencilProgram,
        fields: Mapping[str, Field],
        coefficients: Mapping[str, float] | None,
    ) -> tuple:
        specs = []
        for name in required_inputs(program):
            field = fields.get(name)
            if field is None:
                raise ValidationError(
                    f"program '{program.name}' needs field '{name}' bound"
                )
            specs.append((name, field.spec))
        known = set()
        for kernel in program.kernels():
            known.update(kernel.coefficients)
        overrides = tuple(
            sorted(
                (name, float(value))
                for name, value in (coefficients or {}).items()
                if name in known
            )
        )
        return (program_token(program), tuple(specs), overrides)

    def get(
        self,
        program: StencilProgram,
        fields: Mapping[str, Field],
        coefficients: Mapping[str, float] | None = None,
    ) -> CompiledProgram:
        """The compiled program for this binding, compiling on first use."""
        key = self._key(program, fields, coefficients)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        inputs = required_inputs(program)
        state = program.state_fields[0]
        mesh = fields[state].spec if state in fields else fields[inputs[0]].spec
        input_specs = {name: fields[name].spec for name in inputs}
        compiled = CompiledProgram(
            lower_program(program, mesh, input_specs, coefficients)
        )
        with self._lock:
            if key in self._entries:  # racing compile: keep the incumbent
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._entries[key] = compiled
            self._bytes += compiled.nbytes
            self.misses += 1
            # evict LRU-first past either bound, but always keep the entry
            # just inserted (even one over-budget plan must be usable)
            while len(self._entries) > 1 and (
                len(self._entries) > self.capacity or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
        return compiled

    def clear(self) -> None:
        """Drop all entries (buffers are freed with them)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0


#: process-wide cache shared by every default execution path
DEFAULT_CACHE = CompiledPlanCache()


def run_program_compiled(
    program: StencilProgram,
    fields: Mapping[str, Field],
    niter: int,
    coefficients: Mapping[str, float] | None = None,
    cache: CompiledPlanCache | None = None,
) -> dict[str, Field]:
    """Drop-in replacement for the interpreter's ``run_program``.

    Compiles (or reuses) the plan for this binding and replays it. Returns
    the same environment shape as the golden interpreter, with bit-identical
    field contents.

    Plans compute every op in one dtype, while the interpreter applies
    NumPy's promotion rules to the fields' native dtypes — so a binding
    whose inputs do not all share one dtype (e.g. a float64 constant field
    on a float32 mesh) is handed straight to the golden interpreter rather
    than silently cast.
    """
    if niter < 0:
        raise ValidationError(f"niter must be non-negative, got {niter}")
    for name in required_inputs(program):
        if name not in fields:
            raise ValidationError(
                f"program '{program.name}' needs field '{name}' bound"
            )
    if niter == 0:
        # nothing to run: do not compile (and cache) a plan for it
        return dict(fields)
    dtypes = {
        fields[name].spec.dtype for name in required_inputs(program)
    }
    if len(dtypes) > 1:
        from repro.stencil.numpy_eval import run_program

        return run_program(program, fields, niter, coefficients, engine="interpreter")
    cache = cache if cache is not None else DEFAULT_CACHE
    compiled = cache.get(program, fields, coefficients)
    return compiled.run(fields, niter)
