"""``engine="native"``: JIT-lowered steady tapes with a verified fallback.

:class:`NativeProgram` is a drop-in :class:`~repro.stencil.compiled.CompiledProgram`
whose steady-state loop runs generated code instead of the per-op tape
replay (warm iterations — one replay each — keep the ordinary tape path).
At bind time it lowers the bound steady tapes through
:mod:`repro.stencil.codegen` and picks the fastest available backend:

``numba``
    The generated per-lane loop nests ``njit``-compiled
    (``fastmath=False`` — no reassociation, no contraction). Optional:
    import-guarded, disabled outright by ``REPRO_NO_NUMBA=1``.
``cc``
    The generated C compiled once with the system compiler
    (``-O3 -march=native -ffp-contract=off``) into a shared object loaded via
    ``ctypes``; one foreign call covers a whole ``run_iterations``
    stretch. Artifacts are content-addressed on disk
    (``~/.cache/repro/native``), so equal ``(plan, batch)`` bindings —
    including parallel worker processes — reuse one build.
``python``
    The fused-NumPy flavor (:func:`codegen.make_tape_callable`): one
    specialized, fully unrolled Python function per tape. Always
    available; this is what runs when neither JIT backend is.

Every JIT candidate is **verified at bind time**: the instance runs a few
iterations on seeded pseudo-random inputs through both the tape replay and
the candidate and compares every buffer bitwise. A mismatch (or a build
failure) falls back transparently down the ladder — numba, then cc, then
the fused-Python tapes — so ``engine="native"`` can never return anything
the interpreter would not. ``REPRO_NATIVE_JIT`` pins a backend
(``auto``/``numba``/``cc``/``python``); ``REPRO_NATIVE_VERIFY=0`` skips
the bind-time check (trusted repeat binds).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Callable

import numpy as np

from repro import observability as obs
from repro.stencil.codegen import (
    NativeIR,
    build_ir,
    emit_c,
    emit_numba,
    make_tape_callable,
)
from repro.stencil.compiled import _FLAT_ERRSTATE, CompiledProgram

#: set to "1" to pretend numba is not installed (the fallback-path test
#: hook, and an operational escape hatch)
NO_NUMBA_ENV = "REPRO_NO_NUMBA"
#: pin the backend ladder: "auto" (default), "numba", "cc" or "python"
JIT_ENV = "REPRO_NATIVE_JIT"
#: "0" skips the bind-time bitwise self-check
VERIFY_ENV = "REPRO_NATIVE_VERIFY"
#: overrides the on-disk artifact cache directory
CACHE_DIR_ENV = "REPRO_NATIVE_CACHE_DIR"

#: compile flags shared by every cc build. -ffp-contract=off is load-
#: bearing: a contracted mul+add rounds once where NumPy rounds twice,
#: which would break bit-identity with the interpreter. -march=native is
#: safe for the same reason the bind-time verify gate exists: artifacts
#: are per-host (content-addressed under ~/.cache) and every bind is
#: bitwise-checked before use.
_CC_FLAGS = ("-O3", "-march=native", "-ffp-contract=off", "-fPIC", "-shared")

_lock = threading.Lock()
#: source sha -> loaded shared library (or None after a failed build)
_libs: dict[str, ctypes.CDLL | None] = {}
#: source sha -> njit-wrapped entry point
_numba_fns: dict[str, Callable] = {}
#: memoized "the system compiler is unusable" verdict
_cc_broken = False


def _backend_order() -> tuple[str, ...]:
    pin = os.environ.get(JIT_ENV, "auto").strip().lower()
    if pin == "numba":
        order: tuple[str, ...] = ("numba", "python")
    elif pin == "cc":
        order = ("cc", "python")
    elif pin == "python":
        order = ("python",)
    else:
        order = ("numba", "cc", "python")
    if os.environ.get(NO_NUMBA_ENV) == "1":
        order = tuple(b for b in order if b != "numba")
    return order or ("python",)


def _cache_dir() -> Path:
    root = os.environ.get(CACHE_DIR_ENV)
    if root:
        path = Path(root)
    else:
        path = Path.home() / ".cache" / "repro" / "native"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _find_cc() -> str | None:
    from shutil import which

    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and which(cand):
            return cand
    return None


def _compiled_lib(source: str) -> ctypes.CDLL | None:
    """Build (or reuse) the shared object for one generated C source.

    Content-addressed: the key is the sha of source + flags, so equal
    bindings across instances, threads and worker processes share one
    artifact; concurrent builders race benignly through atomic renames.
    """
    global _cc_broken
    sha = hashlib.sha256(
        (source + "\x00" + " ".join(_CC_FLAGS)).encode()
    ).hexdigest()[:32]
    with _lock:
        if sha in _libs:
            return _libs[sha]
        if _cc_broken:
            return None
    lib: ctypes.CDLL | None = None
    try:
        so_path = _cache_dir() / f"{sha}.so"
        if not so_path.exists():
            cc = _find_cc()
            if cc is None:
                with _lock:
                    _cc_broken = True
                return None
            with tempfile.TemporaryDirectory(dir=so_path.parent) as tmp:
                c_path = Path(tmp) / f"{sha}.c"
                c_path.write_text(source)
                out = Path(tmp) / f"{sha}.so"
                proc = subprocess.run(
                    [cc, *_CC_FLAGS, "-o", str(out), str(c_path)],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode != 0:
                    raise OSError(
                        f"native build failed: {proc.stderr.decode(errors='replace')[:500]}"
                    )
                os.replace(out, so_path)
        lib = ctypes.CDLL(str(so_path))
        lib.repro_run.argtypes = [
            ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64,
        ]
        lib.repro_run.restype = None
    except Exception as exc:  # noqa: BLE001 - any build problem means fallback
        obs.emit("native.cc_build_failed", error=repr(exc))
        lib = None
    with _lock:
        _libs[sha] = lib
    return lib


def _bind_cc(ir: NativeIR) -> Callable[[int, int], None] | None:
    lib = _compiled_lib(emit_c(ir))
    if lib is None:
        return None
    # the pointer table is rebuilt per instance (same source, different
    # buffers); base data pointers are stable for the instance's lifetime
    ptrs = np.array(
        [b.__array_interface__["data"][0] for b in ir.bases], dtype=np.uint64
    )
    addr = ptrs.ctypes.data
    run = lib.repro_run

    def runner(k0: int, n: int, _run=run, _addr=addr, _keep=ptrs) -> None:
        _run(_addr, k0, n)

    return runner


def _bind_numba(ir: NativeIR) -> Callable[[int, int], None] | None:
    if os.environ.get(NO_NUMBA_ENV) == "1":
        return None
    try:
        import numba
    except ImportError:
        return None
    source = emit_numba(ir)
    sha = hashlib.sha256(source.encode()).hexdigest()[:32]
    with _lock:
        fn = _numba_fns.get(sha)
    if fn is None:
        try:
            ns: dict = {}
            exec(compile(source, "<repro-native-numba>", "exec"), ns)  # noqa: S102
            fn = numba.njit(cache=False, fastmath=False)(ns["repro_run"])
        except Exception as exc:  # noqa: BLE001 - fallback, not failure
            obs.emit("native.numba_build_failed", error=repr(exc))
            return None
        with _lock:
            _numba_fns.setdefault(sha, fn)
    flats = tuple(b.reshape(-1) for b in ir.bases)

    def runner(k0: int, n: int, _fn=fn, _flats=flats) -> None:
        _fn(k0, n, *_flats)

    return runner


class NativeProgram(CompiledProgram):
    """A compiled program whose steady loop runs generated native code.

    Identical public surface and bit-identical results; only
    :meth:`_iterate` differs. :attr:`native_backend` names what actually
    runs the steady tapes: ``"numba"``, ``"cc"``, ``"python"`` (the
    fused-NumPy generated functions) or ``"tape"`` when even lowering was
    declined (unsupported dtype) and the instance degraded to the plain
    replay.
    """

    def __init__(self, plan, batch: int = 1):
        super().__init__(plan, batch)
        self.native_backend = "tape"
        self._steady_runner: Callable[[int, int], None] | None = None
        self._bind_native()

    # -- backend selection -----------------------------------------------------
    def _bind_native(self) -> None:
        order = _backend_order()
        ir: NativeIR | None = None
        if any(b in ("numba", "cc") for b in order):
            ir = build_ir(self)
        for backend in order:
            if backend == "numba":
                runner = _bind_numba(ir) if ir is not None else None
            elif backend == "cc":
                runner = _bind_cc(ir) if ir is not None else None
            else:
                runner = self._bind_python()
            if runner is None:
                continue
            if backend == "python" or self._verify(runner):
                self._steady_runner = runner
                self.native_backend = backend
                obs.emit(
                    "native.bound",
                    backend=backend,
                    batch=self.batch,
                    tapes=len(self.plan.steady),
                )
                return
            obs.emit("native.verify_failed", backend=backend)
        # no backend usable (e.g. unsupported dtype with a pinned JIT):
        # stay on the inherited tape replay — still correct, never fast
        obs.emit("native.fallback_tape", batch=self.batch)

    def _bind_python(self) -> Callable[[int, int], None]:
        tape0 = make_tape_callable(self._steady[0])
        tape1 = make_tape_callable(self._steady[1])

        def runner(k0: int, n: int) -> None:
            end = k0 + n
            k = k0
            if k & 1 and k < end:
                tape1()
                k += 1
            while k + 1 < end:
                tape0()
                tape1()
                k += 2
            if k < end:
                tape0()

        return runner

    def _verify(self, runner: Callable[[int, int], None]) -> bool:
        """Bitwise self-check: candidate vs tape replay on seeded inputs.

        Runs ``warm + 4`` iterations (both steady parities twice) twice
        over identical pseudo-random inputs — once through the inherited
        replay, once through the warm replay + candidate steady runner —
        and compares every buffer bit for bit. Buffers are zeroed after,
        so a fresh instance is indistinguishable from an unverified one.
        """
        if os.environ.get(VERIFY_ENV) == "0":
            return True
        iters = len(self._warm) + 4

        def _seed_inputs() -> None:
            for name in self.plan.inputs:
                buf = self._buffers[f"in:{name}"]
                rng = np.random.default_rng(
                    abs(hash((name, buf.shape))) % (2**32)
                )
                # values in [0.5, 1.5): safely away from zero so division
                # ops cannot manufacture infs the replay would also see
                buf[...] = rng.random(buf.shape).astype(buf.dtype) * 0.5 + 0.5
            self._load_expansions()
            self._iterations_done = 0

        try:
            _seed_inputs()
            with np.errstate(**_FLAT_ERRSTATE):
                CompiledProgram._iterate(self, iters)
            reference = {
                slot: buf.copy() for slot, buf in self._buffers.items()
            }
            _seed_inputs()
            with np.errstate(**_FLAT_ERRSTATE):
                warm = len(self._warm)
                for i in range(warm):
                    for fn, args in self._warm[i]:
                        fn(*args)
                runner(0, iters - warm)
            ok = all(
                self._buffers[slot].tobytes() == ref.tobytes()
                for slot, ref in reference.items()
            )
        except Exception as exc:  # noqa: BLE001 - a crashing candidate is a veto
            obs.emit("native.verify_error", error=repr(exc))
            ok = False
        finally:
            for buf in self._buffers.values():
                buf.fill(0)
            self._iterations_done = 0
        return ok

    # -- execution -------------------------------------------------------------
    def _iterate(self, n: int) -> None:
        runner = self._steady_runner
        if runner is None:
            super()._iterate(n)
            return
        done = self._iterations_done
        end = done + n
        i = done
        warm = self._warm
        warm_count = len(warm)
        while i < warm_count and i < end:
            for fn, args in warm[i]:
                fn(*args)
            i += 1
        if i < end:
            runner(i - warm_count, end - i)
        self._iterations_done = end
