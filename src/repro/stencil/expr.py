"""Arithmetic expression IR for stencil kernels.

Expressions are immutable trees built with normal Python operators:

>>> U = lambda dx, dy: FieldAccess("U", (dx, dy))
>>> expr = 0.125 * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1)) + 0.5 * U(0, 0)

The same tree serves three consumers:

* the NumPy golden evaluator (:mod:`repro.stencil.numpy_eval`);
* the resource model, which counts floating-point operations to estimate the
  DSP cost ``G_dsp`` of one mesh-point update (paper eq. (6) and Table II);
* the HLS code generator, which prints it as C++.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.util.errors import ValidationError

Number = Union[int, float]

#: Binary operators supported by the IR.
_BINOPS = ("+", "-", "*", "/")


class Expr:
    """Base class for expression nodes. Instances are immutable and hashable."""

    __slots__ = ()

    # -- operator sugar -------------------------------------------------------
    def __add__(self, other) -> "Expr":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other) -> "Expr":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other) -> "Expr":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other) -> "Expr":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other) -> "Expr":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other) -> "Expr":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other) -> "Expr":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other) -> "Expr":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "Expr":
        return Neg(self)


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (compiled into the datapath, not a runtime input)."""

    value: float

    def __post_init__(self):
        object.__setattr__(self, "value", float(self.value))

    def __str__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class Coef(Expr):
    """A named scalar coefficient, bound at run/configure time (a, b, ... in eq. (1))."""

    name: str

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValidationError(f"coefficient name must be a non-empty string, got {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FieldAccess(Expr):
    """A relative access ``field[x+dx, y+dy(, z+dz)][component]``.

    ``offset`` is given in paper axis order ``(dx, dy[, dz])`` where ``x``
    indexes the contiguous ``m`` dimension.
    """

    field: str
    offset: tuple[int, ...]
    component: int = 0

    def __post_init__(self):
        if not self.field:
            raise ValidationError("field name must be non-empty")
        offset = tuple(int(o) for o in self.offset)
        if len(offset) not in (2, 3):
            raise ValidationError(f"offset must be 2D or 3D, got {offset!r}")
        object.__setattr__(self, "offset", offset)
        if self.component < 0:
            raise ValidationError(f"component must be non-negative, got {self.component}")

    def __str__(self) -> str:
        off = ",".join(f"{o:+d}" for o in self.offset)
        comp = f".{self.component}" if self.component else ""
        return f"{self.field}[{off}]{comp}"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self):
        if self.op not in _BINOPS:
            raise ValidationError(f"unsupported operator {self.op!r}")
        if not isinstance(self.lhs, Expr) or not isinstance(self.rhs, Expr):
            raise ValidationError("BinOp operands must be Expr instances")

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class Neg(Expr):
    """Unary negation (free on FPGA datapaths: folded into the adder)."""

    operand: Expr

    def __post_init__(self):
        if not isinstance(self.operand, Expr):
            raise ValidationError("Neg operand must be an Expr instance")

    def __str__(self) -> str:
        return f"(-{self.operand})"


def as_expr(value) -> Expr:
    """Coerce a number to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise ValidationError(f"cannot convert {type(value).__name__} to Expr")


def walk(expr: Expr) -> Iterator[Expr]:
    """Depth-first pre-order traversal of an expression tree."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, BinOp):
            stack.append(node.rhs)
            stack.append(node.lhs)
        elif isinstance(node, Neg):
            stack.append(node.operand)


@dataclass(frozen=True)
class OpCounts:
    """Floating-point operation counts of an expression or kernel."""

    adds: int = 0
    muls: int = 0
    divs: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            self.adds + other.adds,
            self.muls + other.muls,
            self.divs + other.divs,
        )

    @property
    def total(self) -> int:
        """Total floating-point operations."""
        return self.adds + self.muls + self.divs

    @property
    def flops(self) -> int:
        """Alias for :attr:`total` (1 FLOP per add/mul/div)."""
        return self.total


def count_ops(expr: Expr) -> OpCounts:
    """Count add/sub, mul and div nodes.

    Unary negation is not counted: on the FPGA it folds into the adjacent
    adder, and the GPU fuses it similarly.
    """
    adds = muls = divs = 0
    for node in walk(expr):
        if isinstance(node, BinOp):
            if node.op in ("+", "-"):
                adds += 1
            elif node.op == "*":
                muls += 1
            else:
                divs += 1
    return OpCounts(adds, muls, divs)


def field_accesses(expr: Expr) -> list[FieldAccess]:
    """All field accesses in the expression, in traversal order."""
    return [n for n in walk(expr) if isinstance(n, FieldAccess)]


def coefficient_names(expr: Expr) -> set[str]:
    """Names of all runtime coefficients referenced by the expression."""
    return {n.name for n in walk(expr) if isinstance(n, Coef)}


def field_names(expr: Expr) -> set[str]:
    """Names of all fields referenced by the expression."""
    return {n.field for n in walk(expr) if isinstance(n, FieldAccess)}
