"""Stencil programs: the iterative loop structure around stencil kernels.

A :class:`StencilProgram` is what the workflow maps onto the FPGA: a time
(iterative) loop whose body executes one or more fused groups of stencil
loops in sequence. For the simple solvers (Poisson, Jacobi) the body is a
single one-kernel group. For RTM the body is one group of four fused-loop
kernels chained through on-chip FIFOs (paper Section V-C).

The program also declares its *external* data contract — which fields cross
the memory boundary each outer pass — because memory traffic, not arithmetic,
bounds most designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterator, Mapping, Sequence

from repro.mesh.mesh import MeshSpec
from repro.stencil.kernel import StencilKernel
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class StencilLoop:
    """One stencil loop: a kernel applied over the whole mesh interior."""

    kernel: StencilKernel

    @property
    def name(self) -> str:
        """The kernel's name."""
        return self.kernel.name


@dataclass(frozen=True)
class FusedGroup:
    """Stencil loops fused into one dataflow pipeline pass.

    Within a group, loop ``i+1`` consumes loop ``i``'s outputs through
    on-chip FIFOs and window buffers — intermediate fields never return to
    external memory. Loops execute in list order.
    """

    loops: tuple[StencilLoop, ...]

    def __post_init__(self):
        if not self.loops:
            raise ValidationError("a fused group must contain at least one loop")
        object.__setattr__(self, "loops", tuple(self.loops))

    @property
    def kernels(self) -> tuple[StencilKernel, ...]:
        """Kernels in execution order."""
        return tuple(loop.kernel for loop in self.loops)

    @property
    def order(self) -> int:
        """Max stencil order ``D`` over the group's kernels."""
        return max(k.order for k in self.kernels)

    @property
    def stage_orders(self) -> tuple[int, ...]:
        """Stencil order of each fused stage (used for pipeline fill latency)."""
        return tuple(k.order for k in self.kernels)

    def produced_fields(self) -> tuple[str, ...]:
        """All fields produced by the group, in production order."""
        fields: list[str] = []
        for k in self.kernels:
            for f in k.output_fields:
                if f not in fields:
                    fields.append(f)
        return tuple(fields)


@dataclass(frozen=True)
class StencilProgram:
    """An explicit iterative solver: ``for t in range(niter): run groups``.

    Parameters
    ----------
    name:
        Program name used in reports and generated code.
    mesh:
        The mesh spec the program is defined on (shape may be re-bound at
        run time; rank and components are fixed).
    groups:
        Fused groups executed in order once per time iteration.
    state_fields:
        Fields carried from one iteration to the next (read at the start of
        the body and updated by it), e.g. ``("U",)`` or ``("Y",)``.
    constant_fields:
        Read-only coefficient meshes (e.g. RTM's rho, mu).
    """

    name: str
    mesh: MeshSpec
    groups: tuple[FusedGroup, ...]
    state_fields: tuple[str, ...]
    constant_fields: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self):
        if not self.groups:
            raise ValidationError(f"program '{self.name}' has no groups")
        object.__setattr__(self, "groups", tuple(self.groups))
        object.__setattr__(self, "state_fields", tuple(self.state_fields))
        object.__setattr__(self, "constant_fields", tuple(self.constant_fields))
        if not self.state_fields:
            raise ValidationError(f"program '{self.name}' declares no state fields")
        produced = set()
        for group in self.groups:
            produced |= set(group.produced_fields())
        for f in self.state_fields:
            if f not in produced:
                raise ValidationError(
                    f"program '{self.name}': state field '{f}' is never produced"
                )
        for f in self.constant_fields:
            if f in produced:
                raise ValidationError(
                    f"program '{self.name}': constant field '{f}' is written by a kernel"
                )
        for kernel in self.kernels():
            if kernel.ndim != self.mesh.ndim:
                raise ValidationError(
                    f"program '{self.name}': kernel '{kernel.name}' rank "
                    f"{kernel.ndim} does not match mesh rank {self.mesh.ndim}"
                )

    # -- structure ------------------------------------------------------------
    def kernels(self) -> Iterator[StencilKernel]:
        """All kernels over all groups, in execution order."""
        for group in self.groups:
            yield from group.kernels

    @property
    def num_stencil_loops(self) -> int:
        """Total fused stencil loops per iteration."""
        return sum(len(g.loops) for g in self.groups)

    @property
    def order(self) -> int:
        """Program stencil order ``D``: max over all kernels."""
        return max(k.order for k in self.kernels())

    @property
    def fused_stage_orders(self) -> tuple[int, ...]:
        """Orders of every fused stage in one iteration, in execution order.

        The iterative pipeline's fill latency per unrolled iteration is the
        sum of each stage's ``D/2`` rows/planes (not just the max), because
        the stages are chained back to back.
        """
        orders: list[int] = []
        for group in self.groups:
            orders.extend(group.stage_orders)
        return tuple(orders)

    # -- external memory contract ----------------------------------------------
    def external_reads(self) -> tuple[str, ...]:
        """Fields streamed in from external memory each pass: state + constants."""
        return tuple(self.state_fields) + tuple(self.constant_fields)

    def external_writes(self) -> tuple[str, ...]:
        """Fields streamed back to external memory each pass: the state."""
        return tuple(self.state_fields)

    def bytes_per_cell_pass(self) -> int:
        """External bytes moved per mesh point per outer pass (read + write).

        Memoized on the instance: the model layers (bandwidth feasibility,
        runtime prediction, accelerator reports) ask for it on every
        evaluation inside DSE search loops.
        """
        cached = self.__dict__.get("_bytes_per_cell_pass")
        if cached is not None:
            return cached
        k = self.mesh.elem_bytes
        scalar = self.mesh.dtype.itemsize
        total = 0
        for f in self.external_reads():
            total += k if f in self.state_fields else scalar * self._field_components(f)
        for _ in self.external_writes():
            total += k
        object.__setattr__(self, "_bytes_per_cell_pass", total)
        return total

    def _field_components(self, field: str) -> int:
        """Components of a constant field (assumed scalar unless a kernel says otherwise)."""
        return 1

    def intermediate_fields(self) -> tuple[str, ...]:
        """Fields produced but not part of the external contract (on-chip only)."""
        produced: list[str] = []
        for group in self.groups:
            for f in group.produced_fields():
                if f not in produced:
                    produced.append(f)
        external = set(self.external_writes())
        return tuple(f for f in produced if f not in external)

    def coefficient_values(self) -> Mapping[str, float]:
        """Merged coefficient defaults over all kernels."""
        merged: dict[str, float] = {}
        for kernel in self.kernels():
            for name, value in kernel.coefficients.items():
                if name in merged and merged[name] != value:
                    raise ValidationError(
                        f"program '{self.name}': conflicting defaults for coefficient '{name}'"
                    )
                merged[name] = value
        return merged

    def with_mesh(self, mesh: MeshSpec) -> "StencilProgram":
        """Re-bind the program to a different mesh shape (same rank/components)."""
        if mesh.ndim != self.mesh.ndim:
            raise ValidationError(
                f"cannot re-bind {self.mesh.ndim}D program to {mesh.ndim}D mesh"
            )
        return StencilProgram(
            self.name,
            mesh,
            self.groups,
            self.state_fields,
            self.constant_fields,
            self.description,
        )


def single_kernel_program(
    name: str,
    mesh: MeshSpec,
    kernel: StencilKernel,
    description: str = "",
) -> StencilProgram:
    """Wrap one ping-pong kernel into a program (Poisson/Jacobi shape)."""
    if len(kernel.output_fields) != 1:
        raise ValidationError(
            "single_kernel_program expects a one-output kernel; "
            f"'{kernel.name}' produces {kernel.output_fields}"
        )
    group = FusedGroup((StencilLoop(kernel),))
    return StencilProgram(
        name, mesh, (group,), kernel.output_fields, (), description
    )
