"""NumPy golden evaluator for stencil kernels and programs.

This is the reference ("golden") model every other execution path is checked
against: vectorized slicing over the interior, single-precision arithmetic,
boundary cells carried through unchanged (``init_from``) exactly as the
streaming datapath does.

Evaluation semantics
--------------------
* A kernel updates the mesh *interior* at its per-axis radius; the boundary
  ring of each output is pre-filled from ``init_from`` (or zero).
* All reads refer to the *input* state, except reads of fields produced by an
  earlier output of the same kernel, which refer to the fresh value (a
  datapath wire; centre-point access enforced by kernel validation).
* Within a fused group, loop ``i+1`` reads loop ``i``'s outputs (fresh).
* Arithmetic is performed in the mesh dtype (float32 in the paper).
"""

from __future__ import annotations

from typing import Mapping, MutableMapping

import numpy as np

from repro.mesh.mesh import Field, MeshSpec
from repro.stencil.expr import BinOp, Coef, Const, Expr, FieldAccess, Neg
from repro.stencil.kernel import StencilKernel
from repro.stencil.program import FusedGroup, StencilProgram
from repro.util.errors import SimulationError, ValidationError


def _shifted_view(
    arr: np.ndarray,
    offset: tuple[int, ...],
    radius: tuple[int, ...],
    component: int,
) -> np.ndarray:
    """Interior view of ``arr`` shifted by ``offset`` (paper axis order).

    Storage order is reversed paper order with a trailing component axis.
    """
    ndim = len(offset)
    slices = []
    # storage axes iterate over reversed paper axes
    for storage_axis in range(ndim):
        paper_axis = ndim - 1 - storage_axis
        r = radius[paper_axis]
        d = offset[paper_axis]
        extent = arr.shape[storage_axis]
        slices.append(slice(r + d, extent - r + d))
    slices.append(component)
    return arr[tuple(slices)]


class _ExprEvaluator:
    """Evaluates an expression tree over the mesh interior."""

    def __init__(
        self,
        arrays: Mapping[str, np.ndarray],
        coeffs: Mapping[str, float],
        radius: tuple[int, ...],
        dtype: np.dtype,
    ):
        self.arrays = arrays
        self.coeffs = coeffs
        self.radius = radius
        self.dtype = dtype

    def eval(self, expr: Expr) -> np.ndarray | np.floating:
        if isinstance(expr, Const):
            return self.dtype.type(expr.value)
        if isinstance(expr, Coef):
            try:
                return self.dtype.type(self.coeffs[expr.name])
            except KeyError:
                raise SimulationError(f"coefficient '{expr.name}' has no value") from None
        if isinstance(expr, FieldAccess):
            try:
                arr = self.arrays[expr.field]
            except KeyError:
                raise SimulationError(f"field '{expr.field}' is not bound") from None
            if expr.component >= arr.shape[-1]:
                raise SimulationError(
                    f"component {expr.component} out of range for field "
                    f"'{expr.field}' with {arr.shape[-1]} components"
                )
            return _shifted_view(arr, expr.offset, self.radius, expr.component)
        if isinstance(expr, Neg):
            return -self.eval(expr.operand)
        if isinstance(expr, BinOp):
            lhs = self.eval(expr.lhs)
            rhs = self.eval(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        raise SimulationError(f"unknown expression node {type(expr).__name__}")


def apply_kernel(
    kernel: StencilKernel,
    fields: Mapping[str, Field],
    coefficients: Mapping[str, float] | None = None,
    radius: tuple[int, ...] | None = None,
) -> dict[str, Field]:
    """Apply one kernel over the mesh interior; returns its output fields.

    ``radius`` overrides the kernel's own radius (used when a fused group
    aligns all stages to a common interior, as the hardware pipeline does).
    """
    spec = None
    for fname in kernel.read_fields():
        if fname not in fields:
            raise ValidationError(f"kernel '{kernel.name}' needs field '{fname}'")
        if spec is None:
            spec = fields[fname].spec
    if spec is None:  # pragma: no cover - kernels always read something
        raise ValidationError(f"kernel '{kernel.name}' reads no fields")

    k_radius = radius if radius is not None else kernel.radius
    if len(k_radius) != spec.ndim:
        raise ValidationError(
            f"radius {k_radius} does not match mesh rank {spec.ndim}"
        )

    coeffs = dict(kernel.coefficients)
    if coefficients:
        coeffs.update(coefficients)

    arrays: MutableMapping[str, np.ndarray] = {
        name: f.data for name, f in fields.items()
    }
    interior = spec.interior_slices(k_radius)
    outputs: dict[str, Field] = {}
    evaluator = _ExprEvaluator(arrays, coeffs, tuple(k_radius), spec.dtype)

    for out in kernel.outputs:
        out_spec = MeshSpec(spec.shape, out.components, spec.dtype)
        if out.init_from is not None:
            src = fields.get(out.init_from)
            if src is None:
                raise ValidationError(
                    f"kernel '{kernel.name}': init_from field '{out.init_from}' missing"
                )
            if src.spec != out_spec:
                raise ValidationError(
                    f"kernel '{kernel.name}': init_from '{out.init_from}' spec "
                    f"{src.spec} does not match output spec {out_spec}"
                )
            data = src.data.copy()
        else:
            data = np.zeros(out_spec.storage_shape, dtype=out_spec.dtype)
        for comp, expr in enumerate(out.exprs):
            result = evaluator.eval(expr)
            data[interior + (comp,)] = result
        field = Field(out.field, out_spec, data)
        outputs[out.field] = field
        # later outputs of this kernel see the fresh value
        arrays[out.field] = data
    return outputs


def run_group(
    group: FusedGroup,
    fields: Mapping[str, Field],
    coefficients: Mapping[str, float] | None = None,
) -> dict[str, Field]:
    """Run one fused group; returns the updated field environment."""
    env: dict[str, Field] = dict(fields)
    for loop in group.loops:
        outputs = apply_kernel(loop.kernel, env, coefficients)
        env.update(outputs)
    return env


def run_program(
    program: StencilProgram,
    fields: Mapping[str, Field],
    niter: int,
    coefficients: Mapping[str, float] | None = None,
    engine: str = "compiled",
) -> dict[str, Field]:
    """Run the full iterative solve for ``niter`` time iterations.

    ``fields`` must bind every state and constant field; the returned
    environment contains the final state (plus last-iteration intermediates).

    ``engine`` selects the execution path: ``"compiled"`` (default) replays
    a plan-compiled in-place op tape through the shared
    :data:`repro.stencil.compiled.DEFAULT_CACHE`; ``"interpreter"`` walks the
    expression trees node by node. The two are bit-identical
    (``np.array_equal``); the interpreter remains the golden reference.
    """
    if niter < 0:
        raise ValidationError(f"niter must be non-negative, got {niter}")
    for fname in program.external_reads():
        if fname not in fields:
            raise ValidationError(
                f"program '{program.name}' needs field '{fname}' bound"
            )
    if engine != "interpreter":
        from repro.stencil.compiled import check_engine, run_program_compiled

        check_engine(engine)
        return run_program_compiled(
            program, fields, niter, coefficients, engine=engine
        )
    env: dict[str, Field] = dict(fields)
    for _ in range(niter):
        for group in program.groups:
            env = run_group(group, env, coefficients)
    return env
