"""Stencil access-pattern analysis.

From an expression tree we derive, per read field, the set of relative
offsets touched. These determine the window-buffer geometry (paper Fig. 1):
a 2D stencil of order ``D`` needs ``D`` rows buffered; a 3D stencil needs
``D`` planes (Section III). The paper defines the order ``D`` as twice the
stencil radius (5-point star: D=2; the RTM 25-point 8th-order star: D=8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.stencil.expr import Expr, FieldAccess, field_accesses
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class AccessPattern:
    """The set of relative offsets with which one field is read."""

    field: str
    offsets: tuple[tuple[int, ...], ...]

    def __post_init__(self):
        if not self.offsets:
            raise ValidationError(f"access pattern for '{self.field}' has no offsets")
        ndim = len(self.offsets[0])
        for off in self.offsets:
            if len(off) != ndim:
                raise ValidationError(
                    f"mixed offset ranks in access pattern for '{self.field}'"
                )
        # canonical: sorted unique offsets
        object.__setattr__(self, "offsets", tuple(sorted(set(self.offsets))))

    @property
    def ndim(self) -> int:
        """Spatial rank of the accesses."""
        return len(self.offsets[0])

    @property
    def points(self) -> int:
        """Number of distinct stencil points."""
        return len(self.offsets)

    @property
    def radius(self) -> tuple[int, ...]:
        """Maximum absolute offset per axis (paper order)."""
        return tuple(
            max(abs(off[axis]) for off in self.offsets) for axis in range(self.ndim)
        )

    @property
    def order(self) -> int:
        """Stencil order ``D`` = 2 x max radius over all axes (0 for self-stencils)."""
        return 2 * max(self.radius)

    @property
    def is_self_stencil(self) -> bool:
        """True when only the centre point is accessed (zeroth-order)."""
        return self.offsets == ((0,) * self.ndim,)

    def span_elements(self, mesh_shape: tuple[int, ...]) -> int:
        """Mesh elements between the earliest and latest accessed stream positions.

        This is the paper's window-buffer size rule: "the total number of mesh
        elements needed to be buffered is the maximum number of mesh elements
        between any two stencil points" (Section III), measured in streaming
        order (x fastest).
        """
        if len(mesh_shape) != self.ndim:
            raise ValidationError(
                f"mesh shape {mesh_shape} does not match access rank {self.ndim}"
            )
        strides = [1]
        for extent in mesh_shape[:-1]:
            strides.append(strides[-1] * extent)
        positions = [
            sum(o * s for o, s in zip(off, strides)) for off in self.offsets
        ]
        return max(positions) - min(positions)


@dataclass(frozen=True)
class StencilSpec:
    """Access patterns of a kernel over all fields it reads."""

    patterns: tuple[AccessPattern, ...]

    @classmethod
    def from_exprs(cls, exprs: Iterable[Expr]) -> "StencilSpec":
        """Derive the spec from one or more expressions."""
        by_field: dict[str, set[tuple[int, ...]]] = {}
        for expr in exprs:
            for access in field_accesses(expr):
                by_field.setdefault(access.field, set()).add(access.offset)
        if not by_field:
            raise ValidationError("expressions access no fields")
        patterns = tuple(
            AccessPattern(field, tuple(sorted(offsets)))
            for field, offsets in sorted(by_field.items())
        )
        return cls(patterns)

    @property
    def ndim(self) -> int:
        """Spatial rank of the stencil."""
        return self.patterns[0].ndim

    @property
    def fields(self) -> tuple[str, ...]:
        """All fields read, sorted by name."""
        return tuple(p.field for p in self.patterns)

    @property
    def order(self) -> int:
        """The kernel's stencil order ``D``: max over all read fields."""
        return max(p.order for p in self.patterns)

    @property
    def radius(self) -> tuple[int, ...]:
        """Per-axis radius: elementwise max over all read fields (paper order)."""
        ndim = self.ndim
        return tuple(
            max(p.radius[axis] for p in self.patterns) for axis in range(ndim)
        )

    @property
    def points(self) -> int:
        """Total distinct stencil points over all fields."""
        return sum(p.points for p in self.patterns)

    def pattern(self, field: str) -> AccessPattern:
        """The access pattern of a given field."""
        for p in self.patterns:
            if p.field == field:
                return p
        raise ValidationError(f"field '{field}' is not read by this stencil")

    def buffered_fields(self) -> tuple[AccessPattern, ...]:
        """Patterns that need a window buffer (non-self stencils)."""
        return tuple(p for p in self.patterns if not p.is_self_stencil)

    def window_elements(self, mesh_shape: tuple[int, ...]) -> Mapping[str, int]:
        """Window-buffer size in mesh elements, per buffered field."""
        return {
            p.field: p.span_elements(mesh_shape) for p in self.buffered_fields()
        }
