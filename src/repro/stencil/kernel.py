"""Stencil kernels: one fused loop body over the mesh.

A :class:`StencilKernel` is the unit the FPGA workflow maps to one pipeline
stage: it reads some fields through window buffers and produces one or more
output fields (the paper's RTM implementation fuses e.g. ``K1 = fpml(...)``
and ``T = Y + K1/2`` into a single loop — that is one kernel with two
outputs here). Later outputs may reference earlier outputs of the same
kernel *at the centre point only* (they are wires in the datapath, not
buffered streams).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Mapping, Sequence

from repro.stencil.expr import (
    Expr,
    FieldAccess,
    OpCounts,
    coefficient_names,
    count_ops,
    field_accesses,
)
from repro.stencil.spec import StencilSpec
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class KernelOutput:
    """One output field of a kernel: an expression per component.

    ``init_from`` names the input field whose values pre-fill the output
    array; mesh points not updated by the kernel (the boundary ring of width
    ``radius``) then retain that field's values. For fresh intermediates
    (``init_from=None``) the boundary is zero.
    """

    field: str
    exprs: tuple[Expr, ...]
    init_from: str | None = None

    def __post_init__(self):
        if not self.field:
            raise ValidationError("output field name must be non-empty")
        if not self.exprs:
            raise ValidationError(f"output '{self.field}' has no component expressions")
        for e in self.exprs:
            if not isinstance(e, Expr):
                raise ValidationError(
                    f"output '{self.field}' component expression must be Expr, got {type(e).__name__}"
                )

    @property
    def components(self) -> int:
        """Number of vector components produced."""
        return len(self.exprs)


@dataclass(frozen=True)
class StencilKernel:
    """A named stencil loop body with ordered outputs.

    Parameters
    ----------
    name:
        Kernel name (also used by the HLS code generator).
    outputs:
        Ordered outputs; later outputs may read earlier ones at offset 0.
    coefficients:
        Default values for the named scalar coefficients.
    """

    name: str
    outputs: tuple[KernelOutput, ...]
    coefficients: Mapping[str, float] = dc_field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ValidationError("kernel name must be non-empty")
        if not self.outputs:
            raise ValidationError(f"kernel '{self.name}' has no outputs")
        object.__setattr__(self, "outputs", tuple(self.outputs))
        object.__setattr__(self, "coefficients", dict(self.coefficients))
        self._validate_local_refs()
        missing = self.coefficient_names() - set(self.coefficients)
        if missing:
            raise ValidationError(
                f"kernel '{self.name}' references coefficients without defaults: {sorted(missing)}"
            )

    def _validate_local_refs(self) -> None:
        """Outputs may read earlier same-kernel outputs only at the centre point."""
        produced: set[str] = set()
        ndim = self.ndim
        for out in self.outputs:
            for expr in out.exprs:
                for access in field_accesses(expr):
                    if len(access.offset) != ndim:
                        raise ValidationError(
                            f"kernel '{self.name}': access {access} has rank "
                            f"{len(access.offset)}, kernel is {ndim}D"
                        )
                    # Reading a field that an *earlier* output of this kernel
                    # produced refers to the freshly computed value, which is
                    # a wire in the datapath: centre-point access only.
                    # Reading the *current* output's own name refers to the
                    # input (previous-iteration) version — the usual
                    # ping-pong update U = f(U) — and is unrestricted.
                    if access.field in produced and any(access.offset):
                        raise ValidationError(
                            f"kernel '{self.name}': output '{out.field}' reads "
                            f"same-kernel output '{access.field}' at non-zero "
                            f"offset {access.offset}; only centre-point reads of "
                            "earlier outputs are allowed"
                        )
            produced.add(out.field)

    # -- shape properties ---------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Spatial rank, inferred from the first field access."""
        for out in self.outputs:
            for expr in out.exprs:
                for access in field_accesses(expr):
                    return len(access.offset)
        raise ValidationError(f"kernel '{self.name}' accesses no fields")

    @property
    def output_fields(self) -> tuple[str, ...]:
        """Names of produced fields, in production order."""
        return tuple(o.field for o in self.outputs)

    def output(self, field: str) -> KernelOutput:
        """The output producing ``field``."""
        for o in self.outputs:
            if o.field == field:
                return o
        raise ValidationError(f"kernel '{self.name}' does not produce '{field}'")

    def _external_accesses(self) -> list[FieldAccess]:
        """Accesses that read kernel *inputs* (not earlier same-kernel outputs).

        A read of a field produced by an earlier output of this kernel is a
        local wire. A read of the current output's own name is the input
        (previous-iteration) version and therefore external.
        """
        produced: set[str] = set()
        external: list[FieldAccess] = []
        for out in self.outputs:
            for expr in out.exprs:
                for access in field_accesses(expr):
                    if access.field not in produced:
                        external.append(access)
            produced.add(out.field)
        return external

    def read_fields(self) -> tuple[str, ...]:
        """External fields read, sorted by name."""
        return tuple(sorted({a.field for a in self._external_accesses()}))

    def spec(self) -> StencilSpec:
        """Access pattern over external read fields only."""
        by_field: dict[str, set[tuple[int, ...]]] = {}
        for access in self._external_accesses():
            by_field.setdefault(access.field, set()).add(access.offset)
        if not by_field:
            raise ValidationError(f"kernel '{self.name}' reads no external fields")
        from repro.stencil.spec import AccessPattern

        patterns = tuple(
            AccessPattern(field, tuple(sorted(offsets)))
            for field, offsets in sorted(by_field.items())
        )
        return StencilSpec(patterns)

    @property
    def order(self) -> int:
        """Stencil order ``D`` of the kernel."""
        return self.spec().order

    @property
    def radius(self) -> tuple[int, ...]:
        """Per-axis stencil radius (paper order)."""
        return self.spec().radius

    # -- cost properties ----------------------------------------------------------
    def op_counts(self) -> OpCounts:
        """Total floating-point ops of one mesh-point update (all outputs)."""
        total = OpCounts()
        for out in self.outputs:
            for expr in out.exprs:
                total = total + count_ops(expr)
        return total

    def coefficient_names(self) -> set[str]:
        """All coefficient names referenced by any output expression."""
        names: set[str] = set()
        for out in self.outputs:
            for expr in out.exprs:
                names |= coefficient_names(expr)
        return names

    def with_coefficients(self, **values: float) -> "StencilKernel":
        """A copy of the kernel with some coefficient defaults replaced."""
        unknown = set(values) - self.coefficient_names()
        if unknown:
            raise ValidationError(
                f"kernel '{self.name}' has no coefficients {sorted(unknown)}"
            )
        coeffs = dict(self.coefficients)
        coeffs.update(values)
        return StencilKernel(self.name, self.outputs, coeffs)


def single_output_kernel(
    name: str,
    field: str,
    exprs: Sequence[Expr] | Expr,
    coefficients: Mapping[str, float] | None = None,
    init_from: str | None = None,
) -> StencilKernel:
    """Convenience constructor for the common one-output case.

    ``init_from`` defaults to the output field itself when the kernel also
    reads it (the usual ping-pong update ``U = f(U)``).
    """
    if isinstance(exprs, Expr):
        exprs = (exprs,)
    out = KernelOutput(field, tuple(exprs), init_from)
    kernel = StencilKernel(name, (out,), coefficients or {})
    if init_from is None and field in kernel.read_fields():
        out = KernelOutput(field, tuple(exprs), field)
        kernel = StencilKernel(name, (out,), coefficients or {})
    return kernel
