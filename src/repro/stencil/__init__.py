"""Stencil frontend: expression IR, kernels, programs and the NumPy golden model.

This is the "high-level" entry point of the workflow: users describe stencil
loops as arithmetic expressions over relative mesh accesses, and the rest of
the library (analytic model, dataflow simulator, HLS code generator) consumes
the same intermediate representation.
"""

from repro.stencil.expr import (
    Expr,
    Const,
    Coef,
    FieldAccess,
    BinOp,
    Neg,
    as_expr,
    walk,
    count_ops,
    OpCounts,
    field_accesses,
    coefficient_names,
    field_names,
)
from repro.stencil.spec import StencilSpec, AccessPattern
from repro.stencil.kernel import StencilKernel, KernelOutput
from repro.stencil.program import StencilLoop, FusedGroup, StencilProgram
from repro.stencil.builders import (
    star_offsets,
    box_offsets,
    weighted_star_kernel,
    jacobi2d_5pt,
    jacobi3d_7pt,
    high_order_star_1d_terms,
)
from repro.stencil.numpy_eval import apply_kernel, run_group, run_program
from repro.stencil.plan import ProgramPlan, lower_program, program_token
from repro.stencil.compiled import (
    CompiledPlanCache,
    CompiledProgram,
    DEFAULT_CACHE,
    run_program_compiled,
    run_program_stacked,
)
from repro.stencil.native import NativeProgram

__all__ = [
    "Expr",
    "Const",
    "Coef",
    "FieldAccess",
    "BinOp",
    "Neg",
    "as_expr",
    "walk",
    "count_ops",
    "OpCounts",
    "field_accesses",
    "coefficient_names",
    "field_names",
    "StencilSpec",
    "AccessPattern",
    "StencilKernel",
    "KernelOutput",
    "StencilLoop",
    "FusedGroup",
    "StencilProgram",
    "star_offsets",
    "box_offsets",
    "weighted_star_kernel",
    "jacobi2d_5pt",
    "jacobi3d_7pt",
    "high_order_star_1d_terms",
    "apply_kernel",
    "run_group",
    "run_program",
    "ProgramPlan",
    "lower_program",
    "program_token",
    "CompiledPlanCache",
    "CompiledProgram",
    "DEFAULT_CACHE",
    "run_program_compiled",
    "run_program_stacked",
    "NativeProgram",
]
