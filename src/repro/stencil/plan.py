"""Plan compilation: lowering a stencil program to a flat in-place op tape.

The tree-walking golden evaluator (:mod:`repro.stencil.numpy_eval`)
re-interprets every expression node on every iteration, allocating a fresh
NumPy temporary per arithmetic op and re-copying whole output arrays per
kernel. This module lowers a :class:`~repro.stencil.program.StencilProgram`
*once* into a :class:`ProgramPlan`: a topologically-ordered tape of in-place
ufunc ops over precomputed interior views, with

* **folded constants** — any scalar subtree (constants and bound
  coefficients) is evaluated at compile time in the mesh dtype, reproducing
  the interpreter's scalar arithmetic bit for bit;
* **liveness-based register reuse** — intermediate results live in a small
  pool of preallocated scratch arrays, released the moment their last
  consumer has executed (the tape is sequential, so last-use is the emitting
  op itself);
* **component merging** — consecutive output components whose expressions
  are structurally identical modulo the component index (the RTM pattern:
  five of the six RK4 components share one datapath) collapse into a single
  sliced op over the component axis, cutting tape length and restoring
  contiguous inner loops;
* **ping-pong buffer rotation** — every produced field owns two storage
  buffers; each write alternates between them, so a kernel never reads the
  array it is writing and the steady-state loop allocates **no arrays at
  all**;
* **boundary slab ops** — instead of re-zeroing/copying whole output arrays
  per kernel application, the plan writes only the boundary ring (the
  interior is fully overwritten by the expression tape);
* **flat-mode lowering** — component runs whose operands all live in the
  run's own lane space (the component axis folded into the linearization)
  evaluate on contiguous 1-D windows of the flattened arrays; fixed
  -component reads of input fields are pre-expanded into broadcast buffers
  at load time (``ProgramPlan.expansions``), which is what lets RTM's
  merged multi-component ops leave their strided interior views (see
  :meth:`_Lowerer._flat_run`).

Because the first iteration reads the caller's input buffers while steady
state reads the rotation buffers, a plan carries a short sequence of
*warm-up* tapes (which also write every output's boundary ring) followed by
two *steady* tapes for the remaining odd/even iterations. Buffer rotation
is periodic with period two, so the steady pair repeats indefinitely; the
lowering asserts this invariant. The steady tapes carry no boundary ops at
all: every boundary value is produced by a pure copy chain that terminates
at zeros, a constant field or an initial input boundary, so it stops
changing once the longest ``init_from`` chain has drained — a settle depth
the lowering computes exactly via a symbolic fixpoint over boundary value
ids (see :func:`_boundary_settle_iteration`). The warm-up tapes cover every
iteration up to that settle point, so each rotation buffer's boundary is
final before the steady pair takes over. When a boundary is *not* a pure
copy chain — an ``init_from`` ring wider than its source kernel's radius
overlaps the source's recomputed interior — the steady tapes keep their
boundary ops instead.

Bit-identity contract: executing a plan produces results that are
``np.array_equal`` to the golden interpreter for every program, mesh and
coefficient binding — the same arithmetic DAG is evaluated per mesh point,
only the scheduling (in-place outputs, merged components, folded scalars)
differs, and none of those transformations change IEEE-754 results.
:mod:`repro.stencil.compiled` binds a plan to concrete buffers and runs it.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field as dc_field
from typing import Mapping

import numpy as np

from repro.mesh.mesh import MeshSpec
from repro.stencil.expr import BinOp, Coef, Const, Expr, FieldAccess, Neg, walk
from repro.stencil.kernel import StencilKernel
from repro.stencil.program import StencilProgram
from repro.util.errors import SimulationError, ValidationError

#: Tape op names understood by the executor.
OPS = ("add", "sub", "mul", "div", "neg", "copy", "fill")

_BINOP_NAMES = {"+": "add", "-": "sub", "*": "mul", "/": "div"}


# --------------------------------------------------------------------------- #
# tape argument references
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class View:
    """A precomputable view into a named buffer slot.

    ``index`` is a storage-order tuple of slices plus a trailing component
    selector (an ``int`` for a single component — dropping the axis, as the
    interpreter's shifted views do — or a ``slice`` for merged runs).
    """

    slot: str
    index: tuple


@dataclass(frozen=True)
class Reg:
    """A scratch register: one preallocated array of ``shape`` per ``idx``.

    ``span`` marks flat-mode lane-window registers: it is the number of
    lanes one mesh contributes (``N`` of the run's :class:`_FlatLayout`),
    and ``0`` for canonical interior-shaped registers. A batch-major
    executor extends a spanned register to cover the whole stack —
    ``shape[0] + (B-1)*span`` lanes — so flat ops stay a single contiguous
    1-D ufunc call across all ``B`` meshes (lanes straddling a mesh seam
    compute discarded ghost values, exactly like the row-wrap lanes within
    one mesh).
    """

    shape: tuple[int, ...]
    idx: int
    span: int = 0


@dataclass(frozen=True)
class FlatView:
    """A contiguous 1-D window over a buffer's flattened storage.

    Used by *flat-mode* kernels (see :meth:`_Lowerer._flat_layout`): a shift
    by ``(dx, dy[, dz])`` on C-ordered scalar storage is a constant linear
    offset, so every stencil operand becomes one contiguous slice of the
    flattened array. Lanes whose neighbours wrap across a row edge compute
    discarded ghost values; only interior lanes reach an output buffer.

    ``index`` is the matching interior-mode index, kept so the root op of an
    expression (which must write the strided interior view) can fall back to
    the canonical layout for its operands.
    """

    slot: str
    start: int
    stop: int
    index: tuple


@dataclass(frozen=True)
class RegWindow:
    """A strided interior-shaped window over a flat 1-D register.

    Selects, from a flat-mode register holding lanes ``[R, N-R)``, the lanes
    corresponding to interior mesh positions — the bridge between the flat
    compute window and the canonical strided output layout. ``offset`` and
    ``strides`` are in elements.
    """

    reg: Reg
    offset: int
    shape: tuple[int, ...]
    strides: tuple[int, ...]


@dataclass(frozen=True)
class TapeOp:
    """One in-place operation of the tape.

    ``args`` are :class:`View`/:class:`Reg` references or NumPy scalars
    (folded constants); ``dest`` is where the result lands. ``fill`` takes a
    single scalar arg; ``copy`` a single view/reg arg. ``flat`` marks
    flat-mode arithmetic whose ghost lanes may hit overflow/invalid values
    the interpreter never touches; the executor runs such ops with those
    FP warnings suppressed (interior results are unaffected).
    """

    op: str
    args: tuple
    dest: object  # View | Reg
    flat: bool = False

    def __post_init__(self):
        if self.op not in OPS:
            raise ValidationError(f"unknown tape op {self.op!r}")


@dataclass(frozen=True)
class ProgramPlan:
    """A fully lowered program: buffers, registers and the three tapes."""

    #: canonical mesh the plan was lowered against
    mesh: MeshSpec
    #: buffer slot -> storage shape ("in:<f>" inputs, "st:<f>:<dims>:<k>"
    #: rotations — the storage shape is in the name so a field re-produced
    #: with a different component count gets its own rotation pair)
    buffers: Mapping[str, tuple[int, ...]]
    #: scratch-register (shape, flat-lane span) -> pool size
    registers: Mapping[tuple, int]
    #: warm-up tapes for iterations 0..settle (boundary ops included);
    #: iteration 0 reads the external input buffers
    warm: tuple[tuple[TapeOp, ...], ...]
    #: steady tapes for the two parities of iterations >= len(warm);
    #: ``steady[(i - len(warm)) % 2]`` executes iteration ``i``
    steady: tuple[tuple[TapeOp, ...], tuple[TapeOp, ...]]
    #: field -> slot holding its latest value after iteration 0 / odd / even
    env_after_prologue: Mapping[str, str]
    env_after_odd: Mapping[str, str]
    env_after_even: Mapping[str, str]
    #: mesh spec of every produced field
    produced_specs: Mapping[str, MeshSpec]
    #: fields that must be bound by the caller (reads and init_from sources
    #: not satisfied by an earlier output — a superset check of the
    #: program's declared external contract)
    inputs: tuple[str, ...]
    #: expanded-broadcast buffers: "inx:" slot -> (input field, component).
    #: Each holds one fixed component of an input field splatted across the
    #: consuming run's component axis, filled at load time so flat-mode
    #: merged runs see every operand at the same element stride.
    expansions: Mapping[str, tuple[str, int]] = dc_field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Resident bytes a single-mesh executor binds for this plan.

        Buffers plus scratch registers in the plan dtype (splatted constant
        arrays, which depend on bind-time folding, are excluded — they are
        a small fraction). Batch-major executors scale roughly linearly in
        ``B``, which is what the stacked-dispatch footprint heuristic needs.
        """
        elems = sum(int(np.prod(shape)) for shape in self.buffers.values())
        elems += sum(
            count * int(np.prod(shape))
            for (shape, _span), count in self.registers.items()
        )
        return elems * self.mesh.dtype.itemsize

    @property
    def num_ops(self) -> int:
        """Tape length of one steady-state iteration pair."""
        return len(self.steady[0]) + len(self.steady[1])

    @property
    def steady_odd(self) -> tuple[TapeOp, ...]:
        """The steady tape executing odd iterations."""
        return self.steady[(1 - len(self.warm)) % 2]

    def tape_for(self, iteration: int) -> tuple[TapeOp, ...]:
        """The tape executing the given 0-based iteration."""
        if iteration < len(self.warm):
            return self.warm[iteration]
        return self.steady[(iteration - len(self.warm)) % 2]

    def final_env(self, niter: int) -> Mapping[str, str]:
        """Slots holding each produced field after ``niter`` iterations."""
        if niter <= 0:
            return {}
        if niter == 1:
            return self.env_after_prologue
        return self.env_after_odd if niter % 2 == 0 else self.env_after_even


# --------------------------------------------------------------------------- #
# view construction (mirrors numpy_eval._shifted_view / interior_slices)
# --------------------------------------------------------------------------- #
def _shifted_index(
    offset: tuple[int, ...],
    radius: tuple[int, ...],
    shape: tuple[int, ...],
    component,
) -> tuple:
    """Storage-order index of the interior shifted by ``offset`` (paper order)."""
    ndim = len(offset)
    slices = []
    for storage_axis in range(ndim):
        paper_axis = ndim - 1 - storage_axis
        r = radius[paper_axis]
        d = offset[paper_axis]
        extent = shape[paper_axis]
        slices.append(slice(r + d, extent - r + d))
    return tuple(slices) + (component,)


def _index_shape(index: tuple, storage_shape: tuple[int, ...]) -> tuple[int, ...]:
    """Array shape selected by a :class:`View` index on ``storage_shape``."""
    shape = []
    for sl, extent in zip(index, storage_shape):
        if isinstance(sl, slice):
            start, stop, _ = sl.indices(extent)
            shape.append(max(0, stop - start))
    return tuple(shape)


def required_inputs(program: StencilProgram) -> tuple[str, ...]:
    """Fields the program reads before (or without) producing them.

    The interpreter resolves reads against whatever the caller bound, not
    just the declared external contract, so the plan must bind the same
    set: every kernel read and ``init_from`` source that no earlier output
    satisfies. Memoized on the program instance — the walk visits every
    expression tree and the plan cache asks on every lookup.
    """
    cached = program.__dict__.get("_required_inputs")
    if cached is not None:
        return cached
    produced: set[str] = set()
    required: list[str] = []

    def need(name: str) -> None:
        if name not in produced and name not in required:
            required.append(name)

    for group in program.groups:
        for kernel in group.kernels:
            for name in kernel.read_fields():
                need(name)
            # init_from resolves against the environment at *kernel entry*
            # (exactly apply_kernel): an earlier output of the same kernel
            # does not satisfy it, so defer marking this kernel's outputs
            # as produced until all of them have been scanned
            for out in kernel.outputs:
                if out.init_from is not None:
                    need(out.init_from)
            for out in kernel.outputs:
                produced.add(out.field)
    result = tuple(required)
    object.__setattr__(program, "_required_inputs", result)
    return result


def _boundary_settle_iteration(program: StencilProgram) -> int | None:
    """First iteration whose boundary values repeat the previous iteration's.

    Output boundaries are pure copy chains: zeros (``init_from=None``), a
    never-produced caller field, or another output's boundary from an
    earlier kernel this iteration / the previous iteration (``init_from``
    resolves at *kernel entry*, exactly as :meth:`_Lowerer._lower_kernel`
    and the interpreter do — an earlier output of the same kernel does not
    count). Tracking a symbolic *value id* per output position and
    iterating to a fixpoint gives the exact iteration from which every
    boundary is constant — e.g. 1 for a self ping-pong, but ``d+1`` for a
    depth-``d`` chain of ``init_from`` sources produced by *later* kernels,
    whose initial input boundaries drain one iteration at a time. Returns
    ``None`` if any boundary is not a pure settling copy chain (callers
    must then keep boundary ops in every tape):

    * a field produced **more than once per iteration** — the per-field
      model maps each field to one ping-pong pair advancing one write per
      iteration; multiple writes make producers alternate rotation slots,
      so a slot's ring can keep changing forever even when every
      producer's ring value is constant;
    * an ``init_from`` ring **wider than its source kernel's radius** per
      axis — the ring overlaps the source's recomputed interior, which
      never settles;
    * no fixpoint within the state-space bound.
    """
    kernels: list[list[tuple[str, str | None]]] = []
    radii: dict[str, tuple[int, ...]] = {}
    counts: dict[str, int] = {}
    ring_edges: list[tuple[tuple[int, ...], str]] = []
    for group in program.groups:
        for kernel in group.kernels:
            radius = tuple(kernel.radius)
            outs: list[tuple[str, str | None]] = []
            for out in kernel.outputs:
                outs.append((out.field, out.init_from))
                if out.init_from is not None:
                    ring_edges.append((radius, out.init_from))
                counts[out.field] = counts.get(out.field, 0) + 1
                radii[out.field] = radius
            kernels.append(outs)
    if any(c > 1 for c in counts.values()):
        return None
    for out_radius, src in ring_edges:
        src_radius = radii.get(src)
        if src_radius is not None and any(
            ro > rs for ro, rs in zip(out_radius, src_radius)
        ):
            return None
    produced = set(counts)
    total = sum(len(outs) for outs in kernels)
    #: field -> boundary value id at the start of the iteration (the
    #: caller's binding before iteration 0)
    prev_final: dict[str, tuple] = {f: ("input", f) for f in produced}
    prev_vids: list | None = None
    for k in range(total + 3):
        env: dict[str, tuple] = dict(prev_final)
        vids: list[tuple] = []
        for outs in kernels:
            entry = dict(env)  # init_from resolves at kernel entry
            for field, src in outs:
                if src is None:
                    vid: tuple = ("zero",)
                else:
                    vid = entry.get(src, ("input", src))
                vids.append(vid)
                env[field] = vid
        if prev_vids is not None and vids == prev_vids:
            return k
        prev_vids = vids
        prev_final = env
    return None  # pragma: no cover - copy chains always drain


def _args_equal(a: tuple, b: tuple) -> bool:
    """Tape-op argument equality with NumPy scalars compared bit for bit.

    Folded constants are NumPy scalars; ``==`` on them follows IEEE-754
    (``nan != nan``), which would make the periodicity check reject valid
    plans containing NaN constants. Bit-pattern comparison is the identity
    that matters for replaying a tape.
    """
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, np.generic) or isinstance(y, np.generic):
            if type(x) is not type(y) or x.tobytes() != y.tobytes():
                return False
        elif x != y:
            return False
    return True


def _tapes_equal(t1: tuple[TapeOp, ...], t2: tuple[TapeOp, ...]) -> bool:
    """Structural tape equality (NaN-safe on folded scalar arguments)."""
    if len(t1) != len(t2):
        return False
    return all(
        a.op == b.op
        and a.dest == b.dest
        and a.flat == b.flat
        and _args_equal(a.args, b.args)
        for a, b in zip(t1, t2)
    )


def _boundary_slabs(
    storage_shape: tuple[int, ...], interior: tuple[slice, ...]
) -> list[tuple]:
    """Disjoint slabs covering the complement of the interior box.

    Onion-peel decomposition: slab ``i`` restricts axes ``< i`` to the
    interior, takes the low/high boundary band on axis ``i`` and leaves the
    remaining axes (and the component axis) full.
    """
    slabs: list[tuple] = []
    ndim = len(interior)
    for axis in range(ndim):
        lo = interior[axis].start
        hi = interior[axis].stop
        prefix = tuple(interior[j] for j in range(axis))
        suffix = tuple(slice(None) for _ in range(ndim - axis - 1)) + (slice(None),)
        if lo > 0:
            slabs.append(prefix + (slice(0, lo),) + suffix)
        if hi < storage_shape[axis]:
            slabs.append(prefix + (slice(hi, storage_shape[axis]),) + suffix)
    return slabs


# --------------------------------------------------------------------------- #
# flat-mode layout
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _FlatLayout:
    """Linearized geometry of a flat-mode component run on a given mesh.

    With the component axis folded into the linearization, a shift by paper
    offset ``(dx, dy[, dz])`` on C-ordered ``C``-component storage is the
    linear delta ``C*(dx + dy*m + dz*m*n)``; ``R`` is the radius-weighted
    bound on any such delta, so every operand of the run fits in the lane
    window ``[R, N-R)`` and the first interior point's component-0 lane is
    exactly ``R``.
    """

    #: element stride of each paper axis (component axis folded in)
    axis_strides: tuple[int, ...]
    #: components per mesh element of the run's lane space
    components: int
    #: lane-window margin (max absolute linear delta)
    R: int
    #: total lanes (mesh points x components)
    N: int
    #: compute-window length ``N - 2R``
    window: int
    #: spatial interior shape/strides in storage order, for the
    #: flat->strided bridge (strides in elements, component axis folded in)
    interior_shape: tuple[int, ...]
    interior_strides: tuple[int, ...]

    def delta(self, offset: tuple[int, ...]) -> int:
        return sum(d * s for d, s in zip(offset, self.axis_strides))


def _flat_layout(
    mesh: MeshSpec, radius: tuple[int, ...], components: int = 1
) -> _FlatLayout:
    shape = mesh.shape  # paper order (m, n[, l])
    strides = []
    acc = components  # paper axis 0 steps over `components` elements
    for extent in shape:
        strides.append(acc)
        acc *= extent
    N = acc
    R = sum(r * s for r, s in zip(radius, strides))
    interior_shape = tuple(
        extent - 2 * r for extent, r in zip(reversed(shape), reversed(radius))
    )
    interior_strides = tuple(reversed(strides))
    return _FlatLayout(
        axis_strides=tuple(strides),
        components=components,
        R=R,
        N=N,
        window=N - 2 * R,
        interior_shape=interior_shape,
        interior_strides=interior_strides,
    )


# --------------------------------------------------------------------------- #
# component-merge templates
# --------------------------------------------------------------------------- #
def _merge_template(e1: Expr, c1: int, e2: Expr, c2: int, dtype, classes: list) -> bool:
    """Whether components ``c1`` and ``c2`` perform identical arithmetic.

    Walks both trees in lockstep (left to right, the evaluation order).
    Mergeable means structurally identical with every field access either
    *varying* (component equals the output component on both sides) or
    *fixed* (same component on both sides — a broadcast operand). The
    per-access classification is appended to ``classes`` in visit order;
    ``c1 != c2`` makes the two cases mutually exclusive. Scalars compare by
    exact bit pattern (``-0.0 != 0.0`` here: the sign of zero is observable
    through multiplication).
    """
    if type(e1) is not type(e2):
        return False
    if isinstance(e1, Const):
        return dtype.type(e1.value).tobytes() == dtype.type(e2.value).tobytes()
    if isinstance(e1, Coef):
        return e1.name == e2.name
    if isinstance(e1, FieldAccess):
        if e1.field != e2.field or e1.offset != e2.offset:
            return False
        if e1.component == c1 and e2.component == c2:
            classes.append("vary")
            return True
        if e1.component == e2.component:
            classes.append(e1.component)
            return True
        return False
    if isinstance(e1, Neg):
        return _merge_template(e1.operand, c1, e2.operand, c2, dtype, classes)
    if isinstance(e1, BinOp):
        return (
            e1.op == e2.op
            and _merge_template(e1.lhs, c1, e2.lhs, c2, dtype, classes)
            and _merge_template(e1.rhs, c1, e2.rhs, c2, dtype, classes)
        )
    raise SimulationError(f"unknown expression node {type(e1).__name__}")


# --------------------------------------------------------------------------- #
# lowering
# --------------------------------------------------------------------------- #
class _RegisterPool:
    """Shape-keyed scratch pool with free-list reuse (liveness = tape order).

    Pools are keyed by ``(shape, span)``: flat lane-window registers (which
    a batch-major executor sizes differently) never share storage with a
    same-shaped canonical register.
    """

    def __init__(self):
        self.high_water: dict[tuple, int] = {}
        self._free: dict[tuple, list[int]] = {}

    def alloc(self, shape: tuple[int, ...], span: int = 0) -> Reg:
        key = (shape, span)
        free = self._free.setdefault(key, [])
        if free:
            return Reg(shape, free.pop(), span)
        idx = self.high_water.get(key, 0)
        self.high_water[key] = idx + 1
        return Reg(shape, idx, span)

    def release(self, ref) -> None:
        if isinstance(ref, Reg):
            self._free[(ref.shape, ref.span)].append(ref.idx)

    def reset(self) -> None:
        """Restore every free list to canonical order (lowest index first).

        Registers never carry values across iterations, but the free-list
        order after an iteration depends on its release history; resetting
        at each iteration boundary makes register assignment a pure function
        of tape structure, which the steady-tape periodicity check requires.
        """
        for key, count in self.high_water.items():
            self._free[key] = list(range(count - 1, -1, -1))


class _Lowerer:
    """Lowers one program against a concrete mesh and coefficient binding."""

    def __init__(
        self,
        program: StencilProgram,
        mesh: MeshSpec,
        input_specs: Mapping[str, MeshSpec],
        coefficients: Mapping[str, float] | None,
    ):
        self.program = program
        self.mesh = mesh
        self.dtype = mesh.dtype
        self.overrides = dict(coefficients or {})
        self.buffers: dict[str, tuple[int, ...]] = {}
        #: "inx:" slot -> (input field, fixed component) broadcast expansions
        self.expansions: dict[str, tuple[str, int]] = {}
        self.registers = _RegisterPool()
        self.produced_specs: dict[str, MeshSpec] = {}
        #: per-(field, storage shape) write counter driving ping-pong rotation
        self._rot: dict[tuple[str, tuple[int, ...]], int] = {}
        #: field -> slot currently holding its latest value
        self.env: dict[str, str] = {}
        #: field -> spec of the value currently bound (inputs and outputs)
        self.specs: dict[str, MeshSpec] = {}
        self.inputs = required_inputs(program)
        for name in self.inputs:
            spec = input_specs[name]
            slot = f"in:{name}"
            self.buffers[slot] = spec.storage_shape
            self.env[name] = slot
            self.specs[name] = spec

    # -- plan entry ---------------------------------------------------------
    def lower(self) -> ProgramPlan:
        # boundary values settle once the longest init_from chain has
        # drained; warm-up tapes (boundary ops included) must cover every
        # iteration through that point so both rotation parities hold final
        # boundaries before the steady pair takes over. settle=None keeps
        # boundary ops in the steady tapes too (pure safety fallback).
        settle = _boundary_settle_iteration(self.program)
        warm_count = max(2, (settle if settle is not None else 1) + 1)
        steady_boundary = settle is None
        envs: list[dict[str, str]] = []
        warm: list[tuple[TapeOp, ...]] = []
        for _ in range(warm_count):
            warm.append(tuple(self._lower_iteration()))
            envs.append(dict(self.env))
        steady_a = tuple(self._lower_iteration(emit_boundary=steady_boundary))
        envs.append(dict(self.env))
        steady_b = tuple(self._lower_iteration(emit_boundary=steady_boundary))
        envs.append(dict(self.env))
        # rotation is periodic with period two: two iterations further on,
        # the tape and environment must repeat or the steady pair is invalid
        check = tuple(self._lower_iteration(emit_boundary=steady_boundary))
        env_check = dict(self.env)
        if not _tapes_equal(check, steady_a) or env_check != envs[-2]:  # pragma: no cover
            raise SimulationError("buffer rotation is not periodic; plan is invalid")
        # env after any iteration >= 1 depends only on parity; warm_count >= 2
        # guarantees envs[1]/envs[2] exist (iterations 1 and 2)
        env_odd = envs[1]
        env_even = envs[2]
        produced = {f: s for f, s in envs[0].items() if s.startswith("st:")}
        return ProgramPlan(
            mesh=self.mesh,
            buffers=dict(self.buffers),
            registers=dict(self.registers.high_water),
            warm=tuple(warm),
            steady=(steady_a, steady_b),
            env_after_prologue={f: envs[0][f] for f in produced},
            env_after_odd={f: env_odd[f] for f in produced},
            env_after_even={f: env_even[f] for f in produced},
            produced_specs=dict(self.produced_specs),
            inputs=self.inputs,
            expansions=dict(self.expansions),
        )

    def _lower_iteration(self, emit_boundary: bool = True) -> list[TapeOp]:
        self.registers.reset()
        tape: list[TapeOp] = []
        for group in self.program.groups:
            for loop in group.loops:
                self._lower_kernel(loop.kernel, tape, emit_boundary)
        return tape

    # -- kernel lowering ----------------------------------------------------
    def _lower_kernel(
        self, kernel: StencilKernel, tape: list[TapeOp], emit_boundary: bool
    ) -> None:
        for fname in kernel.read_fields():
            if fname not in self.env:
                raise ValidationError(f"kernel '{kernel.name}' needs field '{fname}'")
        radius = kernel.radius
        if len(radius) != self.mesh.ndim:
            raise ValidationError(
                f"radius {radius} does not match mesh rank {self.mesh.ndim}"
            )
        interior = self.mesh.interior_slices(radius)
        coeffs = dict(kernel.coefficients)
        coeffs.update(self.overrides)
        # init_from resolves against the environment at kernel entry, while
        # expression reads see earlier outputs fresh — exactly apply_kernel
        start_env = dict(self.env)
        for out in kernel.outputs:
            out_spec = MeshSpec(self.mesh.shape, out.components, self.dtype)
            dest = self._alloc_output_slot(out.field, out_spec)
            if emit_boundary:
                self._lower_boundary(out, out_spec, dest, interior, start_env, tape)
            self._lower_components(out, dest, interior, radius, coeffs, tape)
            self.env[out.field] = dest
            self.specs[out.field] = out_spec
            self.produced_specs[out.field] = out_spec

    def _classify(self, access: FieldAccess, comp: int, components: int):
        """Unmerged-run analogue of the merge-template classification.

        ``"vary"`` when the access component tracks the output component
        over a field in the run's lane space (same component count); the
        fixed component index otherwise — exactly what a width-1 template
        walk would have produced.
        """
        spec = self.specs.get(access.field)
        if (
            spec is not None
            and spec.components == components
            and access.component == comp
        ):
            return "vary"
        return access.component

    def _flat_run(
        self,
        out,
        expr: Expr,
        comp: int,
        comp_sel,
        classes: list | None,
        radius: tuple[int, ...],
    ) -> _FlatLayout | None:
        """The flat layout for one component run, or ``None`` for interior mode.

        Flat mode evaluates every inner op on contiguous 1-D lane windows of
        the full arrays, the component axis folded into the linearization
        (edge lanes compute discarded ghost values from wrapped neighbours;
        lanes outside the run's component band compute ghost components);
        only the root op touches the strided interior. Requirements:

        * every *varying* access reads a field in the run's own lane space —
          same component count as the output, on the mesh shape — so a shift
          is one constant linear delta for every lane;
        * every *fixed-component* access reads a pure **input** field (an
          ``in:`` slot) on the mesh shape, which the executor pre-expands at
          load time into an ``inx:`` broadcast buffer with the run's element
          stride (produced fields would need re-expansion every iteration);
        * no division, whose ghost lanes could raise spurious divide
          warnings — ghost-lane add/sub/mul overflow/invalid warnings are
          suppressed via the ``flat=True`` op marking;
        * the run covers at least half the output's components — narrower
          runs would burn more ghost-component lanes than the contiguous
          inner loop wins back.

        Ghost values never reach a buffer: outputs are written through
        strided interior views only.
        """
        components = out.components
        width = 1 if isinstance(comp_sel, int) else comp_sel.stop - comp_sel.start
        if 2 * width < components:
            return None
        cls_iter = iter(classes) if classes is not None else None
        for node in walk(expr):
            if isinstance(node, BinOp) and node.op == "/":
                return None
            if not isinstance(node, FieldAccess):
                continue
            spec = self.specs.get(node.field)
            if spec is None or spec.shape != self.mesh.shape:
                return None
            cls = (
                next(cls_iter)
                if cls_iter is not None
                else self._classify(node, comp, components)
            )
            if cls == "vary":
                if spec.components != components:
                    return None
            else:
                slot = self.env.get(node.field)
                if slot is None or not slot.startswith("in:"):
                    return None
                if cls >= spec.components:
                    return None
        layout = _flat_layout(self.mesh, radius, components)
        if layout.window < 1:
            return None
        return layout

    def _alloc_output_slot(self, field: str, spec: MeshSpec) -> str:
        shape = spec.storage_shape
        key = (field, shape)
        k = self._rot.get(key, 0)
        self._rot[key] = k + 1
        # the shape is part of the slot name: a field re-produced with a
        # different component count within one program must not overwrite
        # (or alias) the other shape's rotation buffers
        dims = "x".join(map(str, shape))
        slot = f"st:{field}:{dims}:{k % 2}"
        self.buffers[slot] = shape
        return slot

    def _lower_boundary(
        self,
        out,
        out_spec: MeshSpec,
        dest: str,
        interior: tuple[slice, ...],
        start_env: Mapping[str, str],
        tape: list[TapeOp],
    ) -> None:
        """Pre-fill the boundary ring: zero, or carried from ``init_from``.

        The interpreter copies/zeroes the whole output array and then
        overwrites the interior; writing only the complement of the interior
        produces the same array without touching interior cells twice.
        """
        slabs = _boundary_slabs(out_spec.storage_shape, interior)
        if out.init_from is None:
            zero = self.dtype.type(0.0)
            for slab in slabs:
                tape.append(TapeOp("fill", (zero,), View(dest, slab)))
            return
        src = start_env.get(out.init_from)
        if src is None:
            raise ValidationError(
                f"kernel: init_from field '{out.init_from}' missing"
            )
        src_spec = self.specs[out.init_from]
        if src_spec != out_spec:
            raise ValidationError(
                f"init_from '{out.init_from}' spec {src_spec} does not match "
                f"output spec {out_spec}"
            )
        for slab in slabs:
            tape.append(TapeOp("copy", (View(src, slab),), View(dest, slab)))

    # -- component lowering (with merging) ----------------------------------
    def _lower_components(
        self,
        out,
        dest: str,
        interior: tuple[slice, ...],
        radius: tuple[int, ...],
        coeffs: Mapping[str, float],
        tape: list[TapeOp],
    ) -> None:
        exprs = out.exprs
        comp = 0
        while comp < len(exprs):
            end = comp + 1
            template: list | None = None
            while end < len(exprs):
                candidate: list = []
                if not _merge_template(
                    exprs[comp], comp, exprs[end], end, self.dtype, candidate
                ):
                    break
                if template is not None and candidate != template:
                    break
                template = candidate
                end += 1
            if end == comp + 1:
                comp_sel: object = comp
            else:
                comp_sel = slice(comp, end)
            dest_view = View(dest, interior + (comp_sel,))
            layout = self._flat_run(out, exprs[comp], comp, comp_sel, template, radius)
            if layout is not None:
                self._lower_flat_root(
                    exprs[comp], layout, dest_view, comp, comp_sel, radius,
                    coeffs, tape, template,
                )
            else:
                self._lower_expr_root(
                    exprs[comp], comp, comp_sel, dest_view, radius, coeffs,
                    tape, iter(template) if template is not None else None,
                )
            comp = end

    # -- flat-mode lowering --------------------------------------------------
    def _lower_flat_root(
        self,
        expr: Expr,
        layout: _FlatLayout,
        dest: View,
        comp: int,
        comp_sel,
        radius: tuple[int, ...],
        coeffs: Mapping[str, float],
        tape: list[TapeOp],
        classes: list | None,
    ) -> None:
        """Finish a flat-mode tree: compute on lanes, bridge to the interior.

        The whole expression runs on contiguous lane windows (every op on
        the SIMD fast path); one final ``copyto`` maps the run's result
        lanes back to the strided interior view — measurably cheaper than
        computing the ops on strided operands directly.
        """
        cls_iter = iter(classes) if classes is not None else None
        ref = self._lower_flat(
            expr, layout, comp, comp_sel, radius, coeffs, tape, cls_iter
        )
        if isinstance(ref, np.generic):
            tape.append(TapeOp("fill", (ref,), dest))
        elif isinstance(ref, FlatView):
            tape.append(TapeOp("copy", (View(ref.slot, ref.index),), dest))
        else:
            tape.append(TapeOp("copy", (self._reg_window(ref, layout, comp_sel),), dest))
            self.registers.release(ref)

    def _reg_window(self, reg: Reg, layout: _FlatLayout, comp_sel) -> RegWindow:
        """Interior-shaped window over a flat register, for the run's lanes.

        The first interior point's component-0 lane sits at window offset 0,
        so the run's band starts at its first component; a merged run keeps
        a trailing component axis of unit stride.
        """
        if isinstance(comp_sel, int):
            return RegWindow(
                reg, comp_sel, layout.interior_shape, layout.interior_strides
            )
        return RegWindow(
            reg,
            comp_sel.start,
            layout.interior_shape + (comp_sel.stop - comp_sel.start,),
            layout.interior_strides + (1,),
        )

    def _lower_flat(
        self,
        expr: Expr,
        layout: _FlatLayout,
        comp: int,
        comp_sel,
        radius: tuple[int, ...],
        coeffs: Mapping[str, float],
        tape: list[TapeOp],
        classes,
    ):
        if isinstance(expr, Const):
            return self.dtype.type(expr.value)
        if isinstance(expr, Coef):
            try:
                return self.dtype.type(coeffs[expr.name])
            except KeyError:
                raise SimulationError(
                    f"coefficient '{expr.name}' has no value"
                ) from None
        if isinstance(expr, FieldAccess):
            cls = (
                next(classes)
                if classes is not None
                else self._classify(expr, comp, layout.components)
            )
            if cls == "vary":
                slot = self.env.get(expr.field)
                if slot is None:
                    raise SimulationError(f"field '{expr.field}' is not bound")
            else:
                slot = self._expanded_slot(expr.field, cls, layout.components)
            d = layout.delta(expr.offset)
            return FlatView(
                slot,
                layout.R + d,
                layout.N - layout.R + d,
                _shifted_index(expr.offset, radius, self.mesh.shape, comp_sel),
            )
        if isinstance(expr, Neg):
            operand = self._lower_flat(
                expr.operand, layout, comp, comp_sel, radius, coeffs, tape, classes
            )
            if isinstance(operand, np.generic):
                return -operand
            self.registers.release(operand)
            dest = self.registers.alloc((layout.window,), span=layout.N)
            tape.append(TapeOp("neg", (operand,), dest, flat=True))
            return dest
        if isinstance(expr, BinOp):
            lhs = self._lower_flat(
                expr.lhs, layout, comp, comp_sel, radius, coeffs, tape, classes
            )
            rhs = self._lower_flat(
                expr.rhs, layout, comp, comp_sel, radius, coeffs, tape, classes
            )
            if isinstance(lhs, np.generic) and isinstance(rhs, np.generic):
                return self._fold(expr.op, lhs, rhs)
            self.registers.release(lhs)
            self.registers.release(rhs)
            dest = self.registers.alloc((layout.window,), span=layout.N)
            tape.append(TapeOp(_BINOP_NAMES[expr.op], (lhs, rhs), dest, flat=True))
            return dest
        raise SimulationError(f"unknown expression node {type(expr).__name__}")

    def _expanded_slot(self, field: str, comp: int, components: int) -> str:
        """The ``inx:`` broadcast-expansion slot for one fixed-component read.

        Holds component ``comp`` of the input field splatted across
        ``components`` lanes per mesh point; filled by the executor at load
        time (the key carries both, so e.g. a scalar coefficient mesh read
        by 3- and 6-component runs gets one buffer per element stride).
        """
        slot = f"inx:{field}:{comp}x{components}"
        if slot not in self.buffers:
            self.buffers[slot] = tuple(reversed(self.mesh.shape)) + (components,)
            self.expansions[slot] = (field, comp)
        return slot

    @staticmethod
    def _fold(op: str, lhs: np.generic, rhs: np.generic) -> np.generic:
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        return lhs / rhs

    def _lower_expr_root(
        self,
        expr: Expr,
        comp: int,
        comp_sel,
        dest: View,
        radius: tuple[int, ...],
        coeffs: Mapping[str, float],
        tape: list[TapeOp],
        classes=None,
    ) -> None:
        ref = self._lower_expr(expr, comp, comp_sel, radius, coeffs, tape, dest, classes)
        if ref is dest:
            return  # root op already wrote into the output view
        if isinstance(ref, np.generic):
            tape.append(TapeOp("fill", (ref,), dest))
        else:
            tape.append(TapeOp("copy", (ref,), dest))
            self.registers.release(ref)

    def _lower_expr(
        self,
        expr: Expr,
        comp: int,
        comp_sel,
        radius: tuple[int, ...],
        coeffs: Mapping[str, float],
        tape: list[TapeOp],
        dest_hint: View | None = None,
        classes=None,
    ):
        """Lower one expression; returns a scalar, View, Reg, or ``dest_hint``.

        ``dest_hint`` is only consumed by the root op of a tree (in-place
        write into the output view); inner nodes allocate registers. For a
        merged component run, ``classes`` yields the per-access vary/fixed
        classification in visit order (left to right, matching the template
        walk).
        """
        if isinstance(expr, Const):
            return self.dtype.type(expr.value)
        if isinstance(expr, Coef):
            try:
                return self.dtype.type(coeffs[expr.name])
            except KeyError:
                raise SimulationError(
                    f"coefficient '{expr.name}' has no value"
                ) from None
        if isinstance(expr, FieldAccess):
            return self._lower_access(expr, comp_sel, radius, classes)
        if isinstance(expr, Neg):
            operand = self._lower_expr(
                expr.operand, comp, comp_sel, radius, coeffs, tape, None, classes
            )
            if isinstance(operand, np.generic):
                return -operand
            dest = dest_hint if dest_hint is not None else self._alloc_like(operand)
            tape.append(TapeOp("neg", (operand,), dest))
            self.registers.release(operand)
            return dest
        if isinstance(expr, BinOp):
            lhs = self._lower_expr(
                expr.lhs, comp, comp_sel, radius, coeffs, tape, None, classes
            )
            rhs = self._lower_expr(
                expr.rhs, comp, comp_sel, radius, coeffs, tape, None, classes
            )
            if isinstance(lhs, np.generic) and isinstance(rhs, np.generic):
                # fold in the mesh dtype: identical scalar arithmetic to the
                # interpreter's node-by-node evaluation
                return self._fold(expr.op, lhs, rhs)
            # release before allocating the dest so `a = a + b` reuses a's
            # register in place (safe: same-shape elementwise ufunc)
            self.registers.release(lhs)
            self.registers.release(rhs)
            if dest_hint is not None:
                dest = dest_hint
            else:
                dest = self._alloc_for(lhs, rhs)
            tape.append(TapeOp(_BINOP_NAMES[expr.op], (lhs, rhs), dest))
            return dest
        raise SimulationError(f"unknown expression node {type(expr).__name__}")

    def _lower_access(
        self, access: FieldAccess, comp_sel, radius: tuple[int, ...], classes
    ) -> View:
        slot = self.env.get(access.field)
        if slot is None:
            raise SimulationError(f"field '{access.field}' is not bound")
        spec = self.specs[access.field]
        if access.component >= spec.components:
            raise SimulationError(
                f"component {access.component} out of range for field "
                f"'{access.field}' with {spec.components} components"
            )
        if classes is None:
            # unmerged: plain single-component access
            sel: object = access.component
        else:
            cls = next(classes)
            # varying accesses ride the merged component slice; fixed ones
            # keep their axis as a width-1 broadcast against the run
            sel = comp_sel if cls == "vary" else slice(cls, cls + 1)
        return View(slot, _shifted_index(access.offset, radius, spec.shape, sel))

    # -- register shapes ----------------------------------------------------
    def _view_shape(self, ref) -> tuple[int, ...]:
        if isinstance(ref, Reg):
            return ref.shape
        return _index_shape(ref.index, self.buffers[ref.slot])

    def _alloc_like(self, ref) -> Reg:
        return self.registers.alloc(self._view_shape(ref))

    def _alloc_for(self, lhs, rhs) -> Reg:
        """Register for a binary result: the broadcast of the array operands."""
        shapes = [
            self._view_shape(r) for r in (lhs, rhs) if not isinstance(r, np.generic)
        ]
        if len(shapes) == 1:
            return self.registers.alloc(shapes[0])
        return self.registers.alloc(np.broadcast_shapes(*shapes))


def lower_program(
    program: StencilProgram,
    mesh: MeshSpec,
    input_specs: Mapping[str, MeshSpec],
    coefficients: Mapping[str, float] | None = None,
) -> ProgramPlan:
    """Lower ``program`` against a concrete mesh/coefficient binding.

    ``input_specs`` gives the spec of every externally bound field (state
    fields carry the mesh element type; constant fields may be scalar).
    """
    for name in required_inputs(program):
        if name not in input_specs:
            raise ValidationError(
                f"program '{program.name}' needs field '{name}' bound"
            )
    return _Lowerer(program, mesh, input_specs, coefficients).lower()


# --------------------------------------------------------------------------- #
# program identity tokens (cache keys)
# --------------------------------------------------------------------------- #
class _HashedKey:
    """A structural key with its hash computed once.

    Kernel coefficient tables are plain dicts, so programs themselves are
    not hashable; this wraps the canonical tuple form. Equality takes the
    identity fast path first — tokens are interned, so repeated lookups for
    equal programs compare by ``is``.
    """

    __slots__ = ("value", "_hash", "__weakref__")

    def __init__(self, value):
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, _HashedKey):
            return NotImplemented
        return self._hash == other._hash and self.value == other.value


def _structural_key(program: StencilProgram) -> _HashedKey:
    kernels = []
    for group in program.groups:
        for kernel in group.kernels:
            kernels.append(
                (
                    kernel.name,
                    tuple(
                        (o.field, o.exprs, o.init_from) for o in kernel.outputs
                    ),
                    tuple(sorted(kernel.coefficients.items())),
                )
            )
        kernels.append(("|group",))
    return _HashedKey(
        (
            program.name,
            program.state_fields,
            program.constant_fields,
            tuple(kernels),
        )
    )


#: id(program) -> (liveness guard, token); pruned when the program dies
_TOKENS: dict[int, tuple] = {}
#: canonical token instances, interned so equal programs share one object;
#: entries are refcounted by the live programs using them and pruned when
#: the last one dies, so the table cannot accumulate one retained
#: expression tree per structure ever tokenized
_INTERNED: dict[_HashedKey, _HashedKey] = {}
_INTERN_REFS: dict[_HashedKey, int] = {}
#: reentrant: a weakref callback can fire from a GC triggered inside the
#: locked region of the same thread
_TOKEN_LOCK = threading.RLock()


def program_token(program: StencilProgram) -> _HashedKey:
    """A hashable identity token for a program's *execution semantics*.

    Equal-by-structure programs (e.g. two ``app.program_on(shape)`` calls)
    yield the same interned token, so plan caches key on semantics rather
    than object identity. The token is memoized per program object; the
    structural walk runs once per instance. Interning is an optimization:
    after a token is pruned, an equal program re-interns a fresh object and
    cache lookups still hit through structural equality.
    """
    pid = id(program)
    with _TOKEN_LOCK:
        entry = _TOKENS.get(pid)
        if entry is not None and entry[0]() is program:
            return entry[1]
    key = _structural_key(program)
    with _TOKEN_LOCK:
        # a concurrent tokenization of the same object may have won while
        # the structural walk ran; keep the incumbent — overwriting it
        # would discard its weakref (the callback never fires) and leave
        # the intern refcount permanently one too high
        entry = _TOKENS.get(pid)
        if entry is not None and entry[0]() is program:
            return entry[1]
        token = _INTERNED.setdefault(key, key)

        def _drop(_ref, _pid=pid, _token=token):
            with _TOKEN_LOCK:
                _TOKENS.pop(_pid, None)
                remaining = _INTERN_REFS.get(_token, 1) - 1
                if remaining <= 0:
                    _INTERN_REFS.pop(_token, None)
                    _INTERNED.pop(_token, None)
                else:
                    _INTERN_REFS[_token] = remaining

        _TOKENS[pid] = (weakref.ref(program, _drop), token)
        _INTERN_REFS[token] = _INTERN_REFS.get(token, 0) + 1
    return token
