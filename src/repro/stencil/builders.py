"""Convenience builders for common stencil shapes.

These construct the expression trees for star/box stencils and the two simple
paper applications; the RTM program has its own module under ``repro.apps``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.stencil.expr import Coef, Const, Expr, FieldAccess, as_expr
from repro.stencil.kernel import StencilKernel, single_output_kernel
from repro.util.errors import ValidationError
from repro.util.validation import check_positive


def star_offsets(ndim: int, radius: int) -> list[tuple[int, ...]]:
    """Offsets of a star (axis-aligned cross) stencil: centre + 2*ndim*radius points."""
    check_positive("radius", radius)
    if ndim not in (2, 3):
        raise ValidationError(f"ndim must be 2 or 3, got {ndim}")
    offsets: list[tuple[int, ...]] = [(0,) * ndim]
    for axis in range(ndim):
        for r in range(1, radius + 1):
            for sign in (-1, 1):
                off = [0] * ndim
                off[axis] = sign * r
                offsets.append(tuple(off))
    return offsets


def box_offsets(ndim: int, radius: int) -> list[tuple[int, ...]]:
    """Offsets of a dense box stencil: ``(2r+1)^ndim`` points."""
    check_positive("radius", radius)
    if ndim not in (2, 3):
        raise ValidationError(f"ndim must be 2 or 3, got {ndim}")
    ranges = [range(-radius, radius + 1)] * ndim
    out: list[tuple[int, ...]] = []

    def rec(prefix: tuple[int, ...], depth: int) -> None:
        if depth == ndim:
            out.append(prefix)
            return
        for v in ranges[depth]:
            rec(prefix + (v,), depth + 1)

    rec((), 0)
    return out


def weighted_star_kernel(
    name: str,
    field: str,
    ndim: int,
    radius: int,
    weights: Mapping[tuple[int, ...], float] | None = None,
    coef_prefix: str | None = None,
) -> StencilKernel:
    """A star-stencil update with per-point weights.

    If ``weights`` is given, points are multiplied by literal constants; if
    ``coef_prefix`` is given, each point gets a named runtime coefficient
    (``<prefix>0``, ``<prefix>1``, ...) defaulting to a normalized average.
    """
    offsets = star_offsets(ndim, radius)
    if weights is not None and coef_prefix is not None:
        raise ValidationError("pass either weights or coef_prefix, not both")
    terms: list[Expr] = []
    coeffs: dict[str, float] = {}
    if coef_prefix is not None:
        default = 1.0 / len(offsets)
        for i, off in enumerate(offsets):
            cname = f"{coef_prefix}{i}"
            coeffs[cname] = default
            terms.append(Coef(cname) * FieldAccess(field, off))
    else:
        weights = dict(weights or {})
        for off in offsets:
            w = weights.pop(tuple(off), None)
            if w is None:
                raise ValidationError(f"missing weight for offset {off}")
            terms.append(Const(w) * FieldAccess(field, off))
        if weights:
            raise ValidationError(f"weights given for non-star offsets: {sorted(weights)}")
    expr = terms[0]
    for t in terms[1:]:
        expr = expr + t
    return single_output_kernel(name, field, expr, coeffs)


def jacobi2d_5pt(field: str = "U") -> StencilKernel:
    """The paper's Poisson-5pt-2D update (eq. (16)).

    ``U' = 1/8 (U[-1,0] + U[1,0] + U[0,-1] + U[0,1]) + 1/2 U[0,0]``

    Built exactly as written — four adds, one multiply by 1/8 and one by 1/2 —
    so the op counts match the paper's ``G_dsp = 14`` with the standard SP
    costs (add: 2 DSP, mul: 3 DSP): 4*2 + 2*3 = 14.
    """
    U = lambda dx, dy: FieldAccess(field, (dx, dy))
    expr = Const(0.125) * (U(-1, 0) + U(1, 0) + U(0, -1) + U(0, 1)) + Const(0.5) * U(0, 0)
    return single_output_kernel("poisson_5pt_2d", field, expr)


def jacobi3d_7pt(field: str = "U", coefficients: Sequence[float] | None = None) -> StencilKernel:
    """The paper's Jacobi-7pt-3D update (eq. (18)).

    ``U' = k1 U[+1,0,0] + k2 U[-1,0,0] + k3 U[0,-1,0] + k4 U[0,0,0]
         + k5 U[0,+1,0] + k6 U[0,0,+1] + k7 U[0,0,-1]``

    6 adds + 7 muls = 6*2 + 7*3 = 33 DSP, matching Table II.
    """
    U = lambda dx, dy, dz: FieldAccess(field, (dx, dy, dz))
    points = [
        U(1, 0, 0),
        U(-1, 0, 0),
        U(0, -1, 0),
        U(0, 0, 0),
        U(0, 1, 0),
        U(0, 0, 1),
        U(0, 0, -1),
    ]
    if coefficients is None:
        # diffusion-like defaults: stable explicit scheme, sums to 1
        coefficients = [0.1, 0.1, 0.1, 0.4, 0.1, 0.1, 0.1]
    if len(coefficients) != 7:
        raise ValidationError(f"jacobi3d_7pt needs 7 coefficients, got {len(coefficients)}")
    coeffs = {f"k{i+1}": float(c) for i, c in enumerate(coefficients)}
    expr: Expr = Coef("k1") * points[0]
    for i, p in enumerate(points[1:], start=2):
        expr = expr + Coef(f"k{i}") * p
    return single_output_kernel("jacobi_7pt_3d", field, expr, coeffs)


def high_order_star_1d_terms(
    field: str,
    axis: int,
    ndim: int,
    radius: int,
    coef_prefix: str,
    component: int = 0,
) -> tuple[Expr, dict[str, float]]:
    """Symmetric high-order central-difference terms along one axis.

    Returns ``sum_r c_r * (f[+r] + f[-r])`` plus a centre term ``c_0 * f[0]``
    and the coefficient defaults — the building block of the RTM 25-point
    8th-order stencil (radius 4 on each of 3 axes).
    """
    check_positive("radius", radius)
    coeffs: dict[str, float] = {}

    def acc(r: int) -> Expr:
        off = [0] * ndim
        off[axis] = r
        return FieldAccess(field, tuple(off), component)

    centre_name = f"{coef_prefix}0"
    coeffs[centre_name] = -2.5  # 8th-order second-derivative centre weight approx
    expr: Expr = Coef(centre_name) * acc(0)
    # classic 8th-order second-derivative weights (scaled); exact values are
    # irrelevant to performance modelling but keep the scheme symmetric.
    defaults = {1: 1.6, 2: -0.2, 3: 8.0 / 315.0, 4: -1.0 / 560.0}
    for r in range(1, radius + 1):
        cname = f"{coef_prefix}{r}"
        coeffs[cname] = defaults.get(r, 1.0 / (r * r))
        expr = expr + Coef(cname) * (acc(r) + acc(-r))
    return expr, coeffs
