"""Source-level lowering of bound op tapes to fused native kernels.

The compiled engine (:mod:`repro.stencil.compiled`) replays a plan's tapes
as a flat list of ``ufunc(a, b, out)`` calls — allocation-free, but every
op still pays NumPy's fixed dispatch cost and writes its intermediate to a
full scratch register. This module lowers a **bound** tape one level
further, to straight-line source code specialized for one
``(plan, batch)`` binding:

1. :func:`build_ir` walks the bound steady tapes and normalizes every op
   into a strided-access form: each operand becomes ``(base array, element
   offset, per-axis element strides)`` over the op's loop shape, read
   straight off the NumPy views the executor itself binds (broadcast axes
   become stride 0), so the IR can never drift from the replay semantics.
   Folded scalars stay literals.
2. A fusion pass turns single-use register chains into nested expressions:
   a register write whose value has exactly one in-tape consumer (with a
   bitwise-identical access pattern, no intervening hazard writes, and a
   live range closed by a later write to the same register) is inlined
   into the consumer and its store elided. The classic
   ``mul/mul/add/add...`` stencil chains collapse into one loop nest per
   produced window — memory is touched once, exactly the dataflow fusion
   the paper realizes in hardware.
3. :func:`emit_c` / :func:`emit_numba` render the fused statements as C
   (built once with the system compiler, driven through ``ctypes``) or as
   per-lane Python loops for ``numba.njit``. Both flavors evaluate the
   same expression trees in the same association order with contraction
   disabled (``-ffp-contract=off`` / ``fastmath=False``), so results stay
   **bit-identical** to the tape replay — and :mod:`repro.stencil.native`
   verifies that bitwise at bind time before trusting either backend.
4. :func:`make_tape_callable` generates the always-available fused-NumPy
   flavor: one specialized Python function per tape with every bound
   ``ufunc(a, b, out)`` call unrolled into a closure (no per-op tuple
   unpacking, no tape loop), used when neither JIT backend is available.

The generated sources embed only plan-derived geometry (shapes, strides,
offsets, folded constants) — never data pointers — so one compiled
artifact is shared by every instance of the same ``(plan token, batch)``
and survives on disk across processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

#: ops renderable as infix/prefix expressions; "copy" is the identity
_EXPR_OPS = {"add", "sub", "mul", "div", "neg", "copy", "fill"}

#: cap on loads folded into one fused expression — past this the chain is
#: materialized to keep generated statements (and compile times) bounded
_MAX_FUSED_LOADS = 48


@dataclass(frozen=True)
class Access:
    """One strided operand: ``base[offset + sum(i_k * strides[k])]``.

    ``base`` indexes :attr:`NativeIR.bases`; ``shape`` is the owning op's
    loop shape and ``strides`` are element strides per loop axis (0 on
    broadcast axes). Equality is exact — two accesses are interchangeable
    only when they address the very same elements in the same order.
    """

    base: int
    offset: int
    shape: tuple[int, ...]
    strides: tuple[int, ...]


@dataclass(frozen=True)
class Load:
    access: Access


@dataclass(frozen=True)
class Const:
    value: float  # exact: python floats hold any f32/f64 bit pattern


@dataclass(frozen=True)
class OpExpr:
    op: str
    args: tuple


@dataclass(frozen=True)
class Statement:
    """``dest[...] = expr`` over ``shape``, the unit of code emission."""

    dest: Access
    shape: tuple[int, ...]
    expr: object


@dataclass
class NativeIR:
    """Fused steady tapes of one bound instance, ready for emission.

    ``bases`` are the instance's live buffer/register arrays in pointer-
    table order; the emitted code addresses them only through the indices
    the accesses carry, so the source itself is instance-independent.
    """

    bases: list[np.ndarray]
    steady: tuple[list[Statement], list[Statement]]
    dtype: np.dtype


def _expr_loads(expr) -> list[Access]:
    if isinstance(expr, Load):
        return [expr.access]
    if isinstance(expr, OpExpr):
        out: list[Access] = []
        for a in expr.args:
            out.extend(_expr_loads(a))
        return out
    return []


def _read_bases(expr) -> set[int]:
    return {a.base for a in _expr_loads(expr)}


@dataclass(frozen=True)
class _RawOp:
    op: str
    dest: Access
    shape: tuple[int, ...]
    args: tuple  # Access | Const


def _base_table(compiled) -> tuple[list[np.ndarray], dict[int, int]]:
    bases: list[np.ndarray] = []
    index: dict[int, int] = {}
    for arr in list(compiled._buffers.values()) + list(
        compiled._registers.values()
    ):
        index[id(arr)] = len(bases)
        bases.append(arr)
    return bases, index


def _owner(compiled, ref) -> np.ndarray:
    """The base array owning a tape-op operand reference."""
    from repro.stencil.plan import FlatView, Reg, RegWindow, View

    if isinstance(ref, (View, FlatView)):
        return compiled._buffers[ref.slot]
    if isinstance(ref, Reg):
        return compiled._registers[(ref.shape, ref.span, ref.idx)]
    if isinstance(ref, RegWindow):
        reg = ref.reg
        return compiled._registers[(reg.shape, reg.span, reg.idx)]
    raise TypeError(f"not an array reference: {ref!r}")


def _access_of(
    arr: np.ndarray, base: np.ndarray, base_idx: int, shape: tuple[int, ...]
) -> Access:
    view = np.broadcast_to(arr, shape) if arr.shape != shape else arr
    itemsize = base.itemsize
    offset = (
        view.__array_interface__["data"][0]
        - base.__array_interface__["data"][0]
    )
    if offset % itemsize:
        raise ValueError("operand is not element-aligned with its base")
    strides = tuple(s // itemsize for s in view.strides)
    return Access(base_idx, offset // itemsize, shape, strides)


def build_ir(compiled) -> NativeIR | None:
    """The fused steady-tape IR of a bound instance, or None if unsupported.

    Declines bindings the native backends cannot reproduce bit-exactly:
    non-float32/float64 dtypes and non-finite folded constants. Warm tapes
    are not lowered — they run once each via the ordinary tape replay,
    while the steady pair carries the whole iteration loop.
    """
    dtype = np.dtype(compiled.plan.mesh.dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        return None
    bases, base_index = _base_table(compiled)
    steady: list[list[Statement]] = []
    try:
        for tape in compiled.plan.steady:
            raw = [_lower_op(compiled, base_index, op) for op in tape]
            steady.append(_fuse(raw, _register_bases(compiled, base_index)))
    except (ValueError, KeyError, TypeError):
        return None
    return NativeIR(bases=bases, steady=(steady[0], steady[1]), dtype=dtype)


def _register_bases(compiled, base_index) -> set[int]:
    return {base_index[id(a)] for a in compiled._registers.values()}


def _lower_op(compiled, base_index, op) -> _RawOp:
    dest_arr = compiled._bind_arg(op.dest)
    dest_base = _owner(compiled, op.dest)
    shape = dest_arr.shape
    dest = _access_of(dest_arr, dest_base, base_index[id(dest_base)], shape)
    args = []
    for a in op.args:
        if isinstance(a, np.generic):
            value = float(a)
            if not math.isfinite(value):
                raise ValueError("non-finite folded constant")
            args.append(Const(value))
        else:
            arr = compiled._bind_arg(a)
            base = _owner(compiled, a)
            args.append(
                _access_of(arr, base, base_index[id(base)], shape)
            )
    name = op.op if op.op in ("add", "sub", "mul", "div", "neg") else (
        "fill" if isinstance(op.args[0], np.generic) else "copy"
    )
    return _RawOp(name, dest, shape, tuple(args))


def _fuse(ops: Sequence[_RawOp], register_bases: set[int]) -> list[Statement]:
    """Fuse single-use register chains; every other op keeps its own loop.

    A store to register base ``b`` at position ``k`` is elided iff

    * its value has exactly one consumer before the next in-tape write to
      ``b``, reading with an access equal to the store's (same elements,
      same order),
    * there **is** a later write to ``b`` in the same tape (the live range
      closes inside the tape — the elided value can never leak into the
      partner tape, a warm tape, or the next iteration),
    * no op between store and consumer writes any base the stored
      expression reads (the deferred loads still see the stored-time
      values), and
    * the consumer's own destination base is not read by the expression
      (fused evaluation interleaves its stores with the deferred loads).
    """
    next_write: dict[int, list[int]] = {}
    writes_at: list[int] = [op.dest.base for op in ops]
    stmts: list[Statement] = []
    #: base -> (expr, dest access, read bases, writes seen since store)
    pending: dict[int, list] = {}

    def flush(base: int) -> None:
        entry = pending.pop(base, None)
        if entry is not None:
            expr, dest = entry[0], entry[1]
            stmts.append(Statement(dest, dest.shape, expr))

    for k, op in enumerate(ops):
        # inline or load each operand
        args = []
        for a in op.args:
            if isinstance(a, Const):
                args.append(a)
                continue
            entry = pending.get(a.base)
            if (
                entry is not None
                and entry[1] == a
                and entry[3] == k  # pre-scanned single consumer is this op
                and op.dest.base not in entry[2]
            ):
                args.append(entry[0])
                del pending[a.base]
            else:
                if entry is not None and entry[3] == k:
                    # the consumer we planned for reads differently than
                    # expected (access mismatch surfaced late): materialize
                    flush(a.base)
                args.append(Load(a))
        expr = args[0] if op.op in ("copy", "fill") else OpExpr(op.op, tuple(args))
        reads = _read_bases(expr)

        # a write to any base a pending expression reads forces it out first
        for base in [b for b, e in pending.items() if op.dest.base in e[2]]:
            flush(base)
        # overwriting a register with an unconsumed pending value: the old
        # value's live range ended unread by anything downstream we could
        # see — materialize it (it may be read by an access pattern we
        # bailed on)
        if op.dest.base in pending:
            flush(op.dest.base)

        consumer = _single_consumer(ops, k, reads, register_bases)
        if (
            consumer is not None
            and len(_expr_loads(expr)) <= _MAX_FUSED_LOADS
        ):
            pending[op.dest.base] = [expr, op.dest, reads, consumer]
        else:
            stmts.append(Statement(op.dest, op.shape, expr))
    for base in list(pending):
        flush(base)
    return stmts


def _single_consumer(
    ops: Sequence[_RawOp], k: int, reads: set[int], register_bases: set[int]
) -> int | None:
    """The index of op ``k``'s unique safe consumer, or None."""
    dest = ops[k].dest
    if dest.base not in register_bases:
        return None
    consumer: int | None = None
    closed = False
    for j in range(k + 1, len(ops)):
        op = ops[j]
        for a in op.args:
            if isinstance(a, Access) and a.base == dest.base:
                if consumer is not None:
                    return None  # second read: value must exist in memory
                if a != dest:
                    return None  # different access: need the real array
                consumer = j
        if op.dest.base == dest.base:
            closed = True
            break
        if consumer is None and op.dest.base in reads:
            return None  # hazard: a source is overwritten before the use
    if consumer is None or not closed:
        return None
    return consumer


# -- loop-shape normalization -------------------------------------------------
def _normalize(stmt: Statement) -> tuple[tuple[int, ...], list[list[int]], list]:
    """(loop shape, per-term strides, terms) with unit axes dropped and
    contiguous axes merged — fewer, longer loops vectorise better.

    ``terms[0]`` is the destination access; the rest are the loads in
    expression order.
    """
    terms = [stmt.dest] + _expr_loads(stmt.expr)
    shape = list(stmt.shape)
    strides = [list(t.strides) for t in terms]
    # drop extent-1 axes (their stride never multiplies a nonzero index)
    keep = [i for i, extent in enumerate(shape) if extent != 1]
    shape = [shape[i] for i in keep]
    strides = [[s[i] for i in keep] for s in strides]
    # merge axis i into i+1 when every term is contiguous across the pair
    i = len(shape) - 2
    while i >= 0:
        if all(s[i] == shape[i + 1] * s[i + 1] for s in strides):
            shape[i + 1] = shape[i] * shape[i + 1]
            del shape[i]
            for s in strides:
                del s[i]
        i -= 1
    return tuple(shape), strides, terms


# -- C emission ---------------------------------------------------------------
def _c_const(value: float, dtype: np.dtype) -> str:
    if dtype == np.dtype(np.float32):
        return f"{float(np.float32(value)).hex()}f"
    return float(value).hex()


def _c_index(offset: int, strides: Sequence[int]) -> str:
    parts = [str(offset)] if offset else []
    for axis, stride in enumerate(strides):
        if stride:
            parts.append(f"i{axis}*{stride}" if stride != 1 else f"i{axis}")
    return " + ".join(parts) if parts else "0"


def _c_expr(expr, dtype, strides_of) -> str:
    if isinstance(expr, Const):
        return _c_const(expr.value, dtype)
    if isinstance(expr, Load):
        a = expr.access
        return f"b{a.base}[{_c_index(a.offset, strides_of(a))}]"
    sym = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
    if expr.op == "neg":
        return f"(-{_c_expr(expr.args[0], dtype, strides_of)})"
    lhs, rhs = expr.args
    return (
        f"({_c_expr(lhs, dtype, strides_of)} {sym[expr.op]} "
        f"{_c_expr(rhs, dtype, strides_of)})"
    )


def _independent_iterations(stmt: Statement) -> bool:
    """True when no loop iteration can depend on an earlier one's store.

    Base arrays are separate allocations, so a load from a *different*
    base can never alias the destination; a load from the destination's
    own base is only safe when it reads the exact same elements in the
    same order (plain in-place updates). Shifted self-reads — the one
    pattern with a genuine loop-carried dependency — veto the assertion.
    """
    return all(
        a.base != stmt.dest.base or a == stmt.dest
        for a in _expr_loads(stmt.expr)
    )


def _emit_stmt_c(stmt: Statement, dtype: np.dtype, lines: list[str]) -> None:
    shape, strides, _terms = _normalize(stmt)
    # strides are positional: [dest] then the loads in expression order,
    # the same order the recursive renderer visits them
    load_iter = {"i": 0}

    def strides_for_next(access: Access) -> list[int]:
        load_iter["i"] += 1
        return strides[load_iter["i"]]

    indent = "  "
    ivdep = _independent_iterations(stmt)
    for axis, extent in enumerate(shape):
        if ivdep:
            lines.append(f"{indent * (axis + 1)}#pragma GCC ivdep")
        lines.append(
            f"{indent * (axis + 1)}for (int64_t i{axis} = 0; "
            f"i{axis} < {extent}; ++i{axis})"
        )
    body_indent = indent * (len(shape) + 1)
    dest_idx = _c_index(stmt.dest.offset, strides[0])
    expr = _c_expr(stmt.expr, dtype, strides_for_next)
    lines.append(f"{body_indent}b{stmt.dest.base}[{dest_idx}] = {expr};")


def emit_c(ir: NativeIR) -> str:
    """C source for the steady pair: one static function per tape plus a
    ``repro_run(void**, k0, n)`` driver that ping-pongs between them, so a
    whole ``run_iterations`` stretch is one foreign call.
    """
    ctype = "float" if ir.dtype == np.dtype(np.float32) else "double"
    lines = [
        "#include <stdint.h>",
        "",
        f"typedef {ctype} real_t;",
        "",
    ]
    for t, stmts in enumerate(ir.steady):
        used = sorted(
            {s.dest.base for s in stmts}
            | {a.base for s in stmts for a in _expr_loads(s.expr)}
        )
        lines.append(f"static void tape{t}(void** P) {{")
        for b in used:
            lines.append(f"  real_t* b{b} = (real_t*)P[{b}];")
        for stmt in stmts:
            lines.append("  {")
            _emit_stmt_c(stmt, ir.dtype, lines)
            lines.append("  }")
        lines.append("}")
        lines.append("")
    lines += [
        "void repro_run(void** P, int64_t k0, int64_t n) {",
        "  int64_t end = k0 + n;",
        "  for (int64_t k = k0; k < end; ++k) {",
        "    if (k & 1) tape1(P); else tape0(P);",
        "  }",
        "}",
        "",
    ]
    return "\n".join(lines)


# -- numba emission -----------------------------------------------------------
def _nb_const(value: float, dtype: np.dtype) -> str:
    # repr round-trips python floats exactly; the dtype wrap keeps numba's
    # type inference from promoting f32 expressions to f64
    name = "np.float32" if dtype == np.dtype(np.float32) else "np.float64"
    return f"{name}({float(value)!r})"


def _nb_expr(expr, dtype, strides_for_next) -> str:
    if isinstance(expr, Const):
        return _nb_const(expr.value, dtype)
    if isinstance(expr, Load):
        a = expr.access
        return f"b{a.base}[{_c_index(a.offset, strides_for_next(a))}]"
    sym = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
    if expr.op == "neg":
        return f"(-{_nb_expr(expr.args[0], dtype, strides_for_next)})"
    lhs, rhs = expr.args
    return (
        f"({_nb_expr(lhs, dtype, strides_for_next)} {sym[expr.op]} "
        f"{_nb_expr(rhs, dtype, strides_for_next)})"
    )


def _emit_stmt_nb(
    stmt: Statement, dtype: np.dtype, lines: list[str], depth: int
) -> None:
    shape, strides, _terms = _normalize(stmt)
    pos = {i: strides[i] for i in range(len(strides))}
    load_iter = {"i": 0}

    def strides_for_next(access: Access) -> list[int]:
        load_iter["i"] += 1
        return pos[load_iter["i"]]

    indent = "    " * depth
    for axis, extent in enumerate(shape):
        lines.append(f"{indent}{'    ' * axis}for i{axis} in range({extent}):")
    body = f"{indent}{'    ' * len(shape)}"
    dest_idx = _c_index(stmt.dest.offset, pos[0])
    expr = _nb_expr(stmt.expr, dtype, strides_for_next)
    lines.append(f"{body}b{stmt.dest.base}[{dest_idx}] = {expr}")


def emit_numba(ir: NativeIR) -> str:
    """Python loop-nest source for ``numba.njit``: same statements, same
    association order as the C flavor, arrays passed as flat 1-D views.
    """
    args = ", ".join(f"b{i}" for i in range(len(ir.bases)))
    lines = [
        "import numpy as np",
        "",
        "",
        f"def repro_run(k0, n, {args}):",
        "    for k in range(k0, k0 + n):",
        "        if k & 1:",
    ]
    for t in (1, 0):
        if t == 0:
            lines.append("        else:")
        stmts = ir.steady[t]
        if not stmts:
            lines.append("            pass")
            continue
        for stmt in stmts:
            _emit_stmt_nb(stmt, ir.dtype, lines, depth=3)
    return "\n".join(lines) + "\n"


# -- fused-NumPy emission -----------------------------------------------------
def make_tape_callable(tape: Sequence[tuple[Callable, tuple]]) -> Callable[[], None]:
    """One specialized zero-arg Python function replaying a bound tape.

    Generates (and ``exec``-compiles) a function whose body is the tape
    fully unrolled — every ``ufunc(a, b, out)`` call a direct invocation on
    closure variables. No per-op tuple unpacking, no loop bookkeeping, no
    global lookups: the cheapest replay pure NumPy allows, and trivially
    bit-identical to the generic replay since it issues the very same
    calls on the very same arrays.
    """
    cells: list = []
    names: list[str] = []
    calls: list[str] = []
    for i, (fn, args) in enumerate(tape):
        fname = f"f{i}"
        cells.append(fn)
        names.append(fname)
        argnames = []
        for j, a in enumerate(args):
            an = f"a{i}_{j}"
            cells.append(a)
            names.append(an)
            argnames.append(an)
        calls.append(f"        {fname}({', '.join(argnames)})")
    body = "\n".join(calls) if calls else "        pass"
    src = (
        f"def _factory({', '.join(names)}):\n"
        f"    def tape_fn():\n{body}\n"
        f"    return tape_fn\n"
    )
    ns: dict = {}
    exec(compile(src, "<repro-native-tape>", "exec"), ns)  # noqa: S102
    return ns["_factory"](*cells)
