"""repro — reproduction of *High-Level FPGA Accelerator Design for
Structured-Mesh-Based Explicit Numerical Solvers* (Kamalakkannan, Mudalige,
Reguly, Fahmy — IPDPS 2021, arXiv:2101.01177).

The package implements the paper's full workflow in Python:

* a stencil frontend (:mod:`repro.stencil`) describing explicit solvers as
  expression trees over structured meshes (:mod:`repro.mesh`);
* device models of the evaluation hardware (:mod:`repro.arch`);
* the predictive analytic model — cycles, resources, bandwidth, tiling,
  batching and energy (:mod:`repro.model`);
* a cycle-approximate dataflow simulator of the proposed accelerator
  template (:mod:`repro.dataflow`);
* a Vivado HLS C++ code generator (:mod:`repro.hls`);
* a V100 GPU baseline performance model (:mod:`repro.gpubaseline`);
* the paper's three applications (:mod:`repro.apps`) and the experiment
  harness reproducing every table and figure (:mod:`repro.harness`).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
