"""HLS project facade: all generated files for one design."""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.hls.codegen import HLSKernelGenerator
from repro.hls.host import generate_connectivity, generate_host, generate_makefile
from repro.model.design import DesignPoint
from repro.stencil.program import StencilProgram


class HLSProject:
    """Generates the complete source tree a user would synthesize."""

    def __init__(self, program: StencilProgram, design: DesignPoint):
        self.program = program
        self.design = design

    def generate(self) -> Mapping[str, str]:
        """All project files as ``{relative_path: contents}``."""
        kernel = HLSKernelGenerator(self.program, self.design)
        return {
            "kernel.cpp": kernel.generate(),
            "host.cpp": generate_host(self.program, self.design),
            "connectivity.cfg": generate_connectivity(self.program, self.design),
            "Makefile": generate_makefile(self.program, self.design),
        }

    def write_to(self, directory: str | Path) -> list[Path]:
        """Write the project to a directory; returns the written paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for rel, content in self.generate().items():
            path = directory / rel
            path.write_text(content)
            written.append(path)
        return written
