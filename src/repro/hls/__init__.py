"""Vivado HLS C++ code generator.

Emits the accelerator sources a user would hand to Vitis for the paper's
template: window-buffer stencil stages with ``PIPELINE II=1`` flattened
loops, a ``DATAFLOW`` region chaining ``p`` compute modules through
``hls::stream`` FIFOs, 512-bit AXI masters per external field, an OpenCL
host driver and the ``.cfg`` connectivity file mapping ports to HBM/DDR4
channels.

The generator consumes the same IR as the simulator and model, so the
generated C++ mirrors exactly the architecture whose cycles were predicted.
"""

from repro.hls.cexpr import c_expr, c_type_for
from repro.hls.codegen import HLSKernelGenerator
from repro.hls.host import generate_host, generate_connectivity, generate_makefile
from repro.hls.project import HLSProject

__all__ = [
    "c_expr",
    "c_type_for",
    "HLSKernelGenerator",
    "generate_host",
    "generate_connectivity",
    "generate_makefile",
    "HLSProject",
]
