"""Expression-tree to C++ printing.

Conventions used by the generated kernels:

* a window access ``F[dx,dy(,dz)].c`` prints as
  ``win_F[rz+dz][ry+dy][rx+dx].v[c]`` (axes present per rank; scalar fields
  use component 0 of a one-float element struct);
* an earlier same-kernel output read at the centre prints as the local
  ``reg_<field>.v[c]`` register;
* coefficients print as ``c_<name>`` (members of the coefficient struct);
* constants print as float literals with an ``f`` suffix.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.stencil.expr import BinOp, Coef, Const, Expr, FieldAccess, Neg
from repro.util.errors import ValidationError


def c_type_for(components: int) -> str:
    """The element struct type name for a field with ``components`` floats."""
    if components <= 0:
        raise ValidationError(f"components must be positive, got {components}")
    return f"elem{components}_t"


def c_expr(
    expr: Expr,
    radius: Sequence[int],
    local_fields: Mapping[str, str] | None = None,
) -> str:
    """Print an expression as C++.

    ``radius`` is the kernel's per-axis radius in paper order (used to bias
    window indices to be non-negative). ``local_fields`` maps same-kernel
    output names to their local register variable names.
    """
    locals_map = dict(local_fields or {})

    def render(e: Expr) -> str:
        if isinstance(e, Const):
            value = e.value
            if value == int(value) and abs(value) < 1e9:
                return f"{value:.1f}f"
            return f"{value!r}f"
        if isinstance(e, Coef):
            return f"c_{e.name}"
        if isinstance(e, Neg):
            return f"(-{render(e.operand)})"
        if isinstance(e, FieldAccess):
            if e.field in locals_map:
                if any(e.offset):
                    raise ValidationError(
                        f"local field '{e.field}' accessed at non-zero offset"
                    )
                return f"{locals_map[e.field]}.v[{e.component}]"
            idx = []
            # window arrays index slowest axis first: [z][y][x]
            for axis in reversed(range(len(e.offset))):
                r = radius[axis]
                d = e.offset[axis]
                idx.append(f"[{r + d}]")
            return f"win_{e.field}{''.join(idx)}.v[{e.component}]"
        if isinstance(e, BinOp):
            return f"({render(e.lhs)} {e.op} {render(e.rhs)})"
        raise ValidationError(f"cannot print expression node {type(e).__name__}")

    return render(expr)
