"""Host driver, connectivity configuration and Makefile generation."""

from __future__ import annotations

from repro.model.design import DesignPoint
from repro.stencil.program import StencilProgram


def generate_host(program: StencilProgram, design: DesignPoint) -> str:
    """OpenCL host source: buffer setup, kernel launch, timing."""
    fields_in = program.external_reads()
    fields_out = program.external_writes()
    lines = [
        "// Auto-generated OpenCL host for " + program.name,
        "#include <CL/cl2.hpp>",
        "#include <chrono>",
        "#include <cstdio>",
        "#include <fstream>",
        "#include <vector>",
        "",
        "int main(int argc, char** argv) {",
        '    const char* xclbin = argc > 1 ? argv[1] : "stencil_top.xclbin";',
        "    int niter = argc > 2 ? atoi(argv[2]) : 100;",
        f"    const int P = {design.p};  // iterative unroll factor",
        "    int num_passes = niter / P;",
        "    cl::Device device = cl::Device::getDefault();",
        "    cl::Context context(device);",
        "    cl::CommandQueue queue(context, device, CL_QUEUE_PROFILING_ENABLE);",
        "    std::ifstream bin_file(xclbin, std::ifstream::binary);",
        "    std::vector<unsigned char> binary(",
        "        (std::istreambuf_iterator<char>(bin_file)),",
        "        std::istreambuf_iterator<char>());",
        "    cl::Program::Binaries bins{{binary.data(), binary.size()}};",
        "    cl::Program prog(context, {device}, bins);",
        '    cl::Kernel kernel(prog, "stencil_top");',
        "",
        f"    const size_t MESH_BYTES = {program.mesh.footprint_bytes}UL;",
    ]
    arg = 0
    for f in fields_in:
        lines += [
            f"    cl::Buffer buf_{f}_in(context, CL_MEM_READ_ONLY, MESH_BYTES);",
            f"    kernel.setArg({arg}, buf_{f}_in);",
        ]
        arg += 1
    for f in fields_out:
        lines += [
            f"    cl::Buffer buf_{f}_out(context, CL_MEM_WRITE_ONLY, MESH_BYTES);",
            f"    kernel.setArg({arg}, buf_{f}_out);",
        ]
        arg += 1
    lines += [
        f"    kernel.setArg({arg}, num_passes);",
        "",
        "    auto t0 = std::chrono::high_resolution_clock::now();",
        "    queue.enqueueTask(kernel);",
        "    queue.finish();",
        "    auto t1 = std::chrono::high_resolution_clock::now();",
        "    double secs = std::chrono::duration<double>(t1 - t0).count();",
        '    printf("runtime: %.6f s for %d iterations\\n", secs, num_passes * P);',
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def generate_connectivity(program: StencilProgram, design: DesignPoint) -> str:
    """Vitis ``.cfg`` mapping each AXI bundle to an HBM/DDR channel (``sp=``)."""
    lines = [
        "# Auto-generated connectivity for " + program.name,
        "[connectivity]",
    ]
    reads = program.external_reads()
    writes = program.external_writes()
    channel = 0
    for i, f in enumerate(reads):
        target = f"HBM[{channel}]" if design.memory == "HBM" else f"DDR[{channel % 2}]"
        lines.append(f"sp=stencil_top_1.gmem_{f}_in:{target}")
        channel += 1
    for j, f in enumerate(writes):
        target = f"HBM[{channel}]" if design.memory == "HBM" else f"DDR[{channel % 2}]"
        lines.append(f"sp=stencil_top_1.gmem_{f}_out:{target}")
        channel += 1
    lines += [
        "",
        "[vivado]",
        f"prop=run.impl_1.strategy=Performance_Explore",
    ]
    return "\n".join(lines) + "\n"


def generate_makefile(program: StencilProgram, design: DesignPoint) -> str:
    """A Vitis build Makefile (hw_emu and hw targets)."""
    freq_khz = int(design.clock_mhz * 1000)
    return f"""# Auto-generated Vitis Makefile for {program.name}
PLATFORM ?= xilinx_u280_xdma_201920_3
TARGET ?= hw
FREQ_KHZ = {freq_khz}

VXX = v++
VXXFLAGS = -t $(TARGET) --platform $(PLATFORM) --kernel_frequency $(FREQ_KHZ) \\
    --config connectivity.cfg -Ofast

all: stencil_top.xclbin host

stencil_top.xo: kernel.cpp
\t$(VXX) $(VXXFLAGS) -c -k stencil_top -o $@ $<

stencil_top.xclbin: stencil_top.xo
\t$(VXX) $(VXXFLAGS) -l -o $@ $<

host: host.cpp
\t$(CXX) -std=c++14 -o $@ $< -lOpenCL

clean:
\trm -rf *.xo *.xclbin host _x .Xil

.PHONY: all clean
"""
