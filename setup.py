"""Packaging for the IPDPS 2021 FPGA stencil-accelerator reproduction.

Editable installs (``pip install -e .``) expose the ``repro`` console
script, so ``repro dse jacobi3d --trials 50`` works without PYTHONPATH.
"""

from setuptools import find_packages, setup

setup(
    name="repro-fpga-stencil",
    version="0.2.0",
    description=(
        "Analytic models, dataflow simulator and design-space exploration "
        "engine for high-level FPGA accelerator design of structured-mesh "
        "explicit numerical solvers (IPDPS 2021 reproduction)"
    ),
    long_description=(
        "Reproduction of 'High-Level FPGA Accelerator Design for "
        "Structured-Mesh-Based Explicit Numerical Solvers': stencil "
        "programs, Alveo U280/U250 device models, runtime/energy "
        "prediction, HLS code generation, and the repro.dse subsystem for "
        "Pareto-front design-space exploration with resumable studies."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest>=7", "hypothesis>=6", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Hardware",
    ],
)
